#include "prob/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.h"
#include "prob/estimator.h"
#include "prob/waiting_time.h"

namespace procon::prob {
namespace {

ActorLoad make_load(double tau, double p) {
  ActorLoad l;
  l.exec_time = tau;
  l.probability = p;
  l.mean_blocking = tau / 2.0;
  return l;
}

TEST(MonteCarlo, EmptyAndZeroTrials) {
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(waiting_time_monte_carlo({}, rng, 1000), 0.0);
  const std::vector<ActorLoad> one{make_load(10.0, 0.5)};
  EXPECT_DOUBLE_EQ(waiting_time_monte_carlo(one, rng, 0), 0.0);
}

TEST(MonteCarlo, SingleBlockerMatchesClosedForm) {
  // E[wait] = P * tau/2 = 50/3 for the Section 3 example.
  const std::vector<ActorLoad> others{make_load(100.0, 1.0 / 3.0)};
  util::Rng rng(2);
  const double mc = waiting_time_monte_carlo(others, rng, 400'000);
  EXPECT_NEAR(mc, 50.0 / 3.0, 0.15);
}

TEST(MonteCarlo, DeterministicForSeed) {
  const std::vector<ActorLoad> others{make_load(10.0, 0.3), make_load(20.0, 0.6)};
  util::Rng a(5), b(5);
  EXPECT_DOUBLE_EQ(waiting_time_monte_carlo(others, a, 10'000),
                   waiting_time_monte_carlo(others, b, 10'000));
}

TEST(MonteCarlo, ZeroProbabilityNeverWaits) {
  const std::vector<ActorLoad> others{make_load(50.0, 0.0), make_load(70.0, 0.0)};
  util::Rng rng(3);
  EXPECT_DOUBLE_EQ(waiting_time_monte_carlo(others, rng, 10'000), 0.0);
}

TEST(MonteCarlo, CertainBlockersAlwaysWaitAtLeastResidual) {
  // Both always blocking: wait >= the smaller residual; also wait <= sum of
  // both full times.
  const std::vector<ActorLoad> others{make_load(10.0, 1.0), make_load(10.0, 1.0)};
  util::Rng rng(4);
  const double mc = waiting_time_monte_carlo(others, rng, 50'000);
  // Expected: serving residual 5 plus the queued full 10 = 15.
  EXPECT_NEAR(mc, 15.0, 0.2);
}

// The central validation: the Monte-Carlo sample mean of the paper's own
// queue model converges to the closed-form Eq. 4 value, independently
// confirming both the formula and the symmetric-polynomial implementation.
class MonteCarloConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonteCarloConvergence, SampleMeanMatchesEquation4) {
  util::Rng rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 8));
  std::vector<ActorLoad> others;
  for (std::size_t i = 0; i < n; ++i) {
    others.push_back(make_load(rng.uniform_real(5.0, 100.0),
                               rng.uniform_real(0.05, 0.85)));
  }
  const double exact = waiting_time_exact(others);
  util::Rng mc_rng(GetParam() + 1);
  const double mc = waiting_time_monte_carlo(others, mc_rng, 300'000);
  // Loose 5-sigma-style bound: waits are bounded by sum(tau), so the
  // standard error at 300k samples is far below 1% of the scale.
  double scale = 0.0;
  for (const auto& l : others) scale += l.exec_time;
  EXPECT_NEAR(mc, exact, 0.02 * scale + 0.05) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarloConvergence,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(MonteCarloEstimator, MatchesExactMethodOnPaperExample) {
  // With one other actor per node the queue model is the single-blocker
  // case; 200k samples land within a fraction of a time unit of Eq. 4.
  const auto sys = procon::testing::fig2_system();
  const auto exact = ContentionEstimator(
                         EstimatorOptions{.method = Method::Exact})
                         .estimate(sys);
  EstimatorOptions mc_opts{.method = Method::MonteCarlo};
  mc_opts.mc_trials = 200'000;
  const auto mc = ContentionEstimator(mc_opts).estimate(sys);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(mc[i].estimated_period, exact[i].estimated_period,
                0.01 * exact[i].estimated_period);
  }
}

TEST(MonteCarloEstimator, Reproducible) {
  const auto sys = procon::testing::fig2_system();
  const EstimatorOptions opts{.method = Method::MonteCarlo};
  const auto a = ContentionEstimator(opts).estimate(sys);
  const auto b = ContentionEstimator(opts).estimate(sys);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].estimated_period, b[i].estimated_period);
  }
}

}  // namespace
}  // namespace procon::prob
