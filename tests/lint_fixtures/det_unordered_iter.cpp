// Fixture: det-unordered-iter fires on hash-order iteration in
// result-producing namespaces. NOT compiled — linted by test_lint.
#include <numeric>
#include <unordered_map>
#include <vector>

namespace procon::analysis {
struct Cache {
  std::unordered_map<int, double> table_;
  std::vector<double> mirror_;
  double bad_range_for() const {
    double s = 0.0;
    for (const auto& [k, v] : table_) s += v;      // line 13: det-unordered-iter
    return s;
  }
  double bad_iterators() const {
    double s = 0.0;
    for (auto it = table_.begin(); it != table_.end(); ++it) {  // line 18
      s += it->second;
    }
    return s;
  }
  double fine_lookup(int k) const { return table_.at(k); }  // lookups are fine
  double fine_mirror() const {
    double s = 0.0;
    for (const double v : mirror_) s += v;         // ordered mirror: fine
    return s;
  }
};
}  // namespace procon::analysis
