// Fixture: warm-new fires on `new` inside a PROCON_WARM_PATH body and
// nowhere else. NOT compiled — linted by test_lint.
#define PROCON_WARM_PATH

PROCON_WARM_PATH int* warm_alloc(int v) {
  return new int(v);                    // line 6: warm-new
}

PROCON_WARM_PATH void declared_only(int v);  // declarations are skipped

int* cold_alloc(int v) {
  return new int(v);                    // unannotated: fine
}
