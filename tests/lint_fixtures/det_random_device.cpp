// Fixture: det-random-device fires on entropy sources in result-producing
// namespaces. NOT compiled — linted by test_lint.
#include <random>

namespace procon::prob {
unsigned bad() {
  std::random_device rd;                // line 7: det-random-device
  return rd();
}
}  // namespace procon::prob

namespace procon::testing {
unsigned fine() {
  std::random_device rd;                // test helpers may seed freely
  return rd();
}
}  // namespace procon::testing
