// Fixture: warm-push-back fires on push_back/emplace_back to an unreserved
// body-local; a reserve() anywhere in the body sanctions the target. The
// locals themselves also trip warm-container-construct (asserted too).
// NOT compiled — linted by test_lint.
#define PROCON_WARM_PATH
#include <vector>

PROCON_WARM_PATH double collect(int n) {
  std::vector<double> tmp;               // line 9: warm-container-construct
  tmp.push_back(1.0);                    // line 10: warm-push-back
  std::vector<double> ok;                // line 11: warm-container-construct
  ok.reserve(static_cast<std::size_t>(n));
  ok.push_back(2.0);                     // reserved target: fine
  return tmp.front() + ok.front();
}
