// Fixture: det-rand must fire on libc PRNG calls in result-producing
// namespaces and stay silent elsewhere. NOT compiled — linted by test_lint.
#include <cstdlib>

namespace procon::analysis {
int bad() { return rand(); }            // line 6: det-rand
void worse(unsigned s) { srand(s); }    // line 7: det-rand
}  // namespace procon::analysis

namespace procon::gen {
int fine() { return rand(); }           // gen is not result-producing
struct Rng {
  int rand() { return 4; }              // someone's API, not libc
};
}  // namespace procon::gen

namespace procon::sim {
int ok(gen::Rng& r) { return r.rand(); }  // member call: exempt
}  // namespace procon::sim
