// Fixture: det-wallclock fires on wall-clock reads in result-producing
// namespaces. NOT compiled — linted by test_lint.
#include <chrono>
#include <ctime>

namespace procon::dse {
long bad_chrono() {
  auto t = std::chrono::steady_clock::now();   // line 8: det-wallclock
  return t.time_since_epoch().count();
}
long bad_ctime() { return std::time(nullptr); }  // line 11: det-wallclock
}  // namespace procon::dse

namespace procon::bench {
long fine() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace procon::bench
