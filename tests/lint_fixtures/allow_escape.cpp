// Fixture: lint:allow escape semantics — same-line and preceding-line
// forms suppress, the justification is mandatory, unknown rule ids are
// themselves findings, and meta findings cannot be suppressed.
// NOT compiled — linted by test_lint.
#include <cstdlib>

namespace procon::sim {

int seeded() { return rand(); }  // lint:allow(det-rand): fixture replays a recorded seed

// lint:allow(det-rand): escape on its own line covers the next code line
int next_line() { return rand(); }

int unjustified() { return rand(); }  // lint:allow(det-rand)

int unknown() { return 0; }  // lint:allow(not-a-rule): no such rule id

int unsuppressed() { return rand(); }  // line 18: det-rand

}  // namespace procon::sim
