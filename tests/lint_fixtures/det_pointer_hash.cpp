// Fixture: det-pointer-hash fires on pointer-keyed hashing in
// result-producing namespaces. NOT compiled — linted by test_lint.
#include <functional>
#include <unordered_map>

namespace procon::wcrt {
struct Engine {};
std::unordered_map<Engine*, int> by_engine;     // line 8: det-pointer-hash
std::size_t bad(Engine* e) {
  return std::hash<Engine*>{}(e);               // line 10: det-pointer-hash
}
std::unordered_map<int, Engine*> fine_values;   // pointer value, not key
}  // namespace procon::wcrt
