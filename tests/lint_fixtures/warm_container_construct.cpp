// Fixture: warm-container-construct fires on body-local containers in a
// PROCON_WARM_PATH body; the member/workspace arena idiom stays silent.
// NOT compiled — linted by test_lint.
#define PROCON_WARM_PATH
#include <string>
#include <vector>

struct Workspace {
  std::vector<double> scratch;
};

struct Engine {
  Workspace ws_;

  PROCON_WARM_PATH double bad(int n) {
    std::vector<double> tmp(n, 0.0);       // line 16: warm-container-construct
    std::string label;                     // line 17: warm-container-construct
    return tmp.empty() ? 0.0 : static_cast<double>(label.size());
  }

  PROCON_WARM_PATH double good(int n) {
    std::vector<double>& s = ws_.scratch;  // reference binding: fine
    if (static_cast<int>(s.size()) < n) s.resize(n);  // grow-only arena
    return s.empty() ? 0.0 : s.front();
  }
};
