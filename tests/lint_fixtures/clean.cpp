// Fixture: code written to the repo contracts — ordered iteration mirrors,
// grow-only member arenas, guarded lookups — must produce zero findings.
// NOT compiled — linted by test_lint.
#define PROCON_WARM_PATH
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace procon::analysis {

struct Table {
  std::unordered_map<std::uint64_t, double> by_key_;
  std::vector<std::uint64_t> keys_;  // sorted mirror for deterministic walks
  std::vector<double> scratch_;

  double lookup(std::uint64_t k) const {
    const auto it = by_key_.find(k);
    return it == by_key_.end() ? 0.0 : it->second;
  }

  PROCON_WARM_PATH double sum_in_order() const {
    double s = 0.0;
    for (const std::uint64_t k : keys_) s += by_key_.at(k);
    return s;
  }

  PROCON_WARM_PATH void accumulate(const double* xs, std::size_t n) {
    if (scratch_.size() < n) scratch_.resize(n);  // grow-only arena
    for (std::size_t i = 0; i < n; ++i) scratch_[i] += xs[i];
  }
};

}  // namespace procon::analysis
