// Fixture: codec-unguarded-size — a size decoded from the wire must flow
// through get_count()/take() before it sizes an allocation. The test points
// Options::codec_path at this file to activate the family.
// NOT compiled — linted by test_lint.
#include <cstdint>
#include <vector>

namespace procon::net {

struct WireReader {
  std::uint32_t u32();
  std::uint64_t u64();
};
std::size_t get_count(WireReader& r, std::size_t min_bytes);

void bad_decode(WireReader& r, std::vector<int>& out) {
  std::uint32_t n = r.u32();             // taints n
  out.resize(n);                         // line 18: codec-unguarded-size
  std::vector<int> tmp(r.u64());         // line 19: codec-unguarded-size
  out.reserve(tmp.size());               // tmp's size is local: fine
}

void good_decode(WireReader& r, std::vector<int>& out) {
  std::size_t n = get_count(r, 4);       // guard sanitises n
  out.resize(n);                         // guarded: fine
}

}  // namespace procon::net
