// Fixture: warm-std-function fires on std::function inside a
// PROCON_WARM_PATH body. NOT compiled — linted by test_lint.
#define PROCON_WARM_PATH
#include <functional>

PROCON_WARM_PATH double warm_apply(double x) {
  std::function<double(double)> f = [](double v) { return v * 2.0; };  // line 7
  return f(x);
}

double cold_apply(double x, const std::function<double(double)>& f) {
  return f(x);                           // unannotated: fine
}
