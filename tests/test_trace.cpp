// Simulator trace tests, including the key non-preemptive correctness
// invariant: on FCFS and round-robin nodes no two service intervals may
// overlap.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gen/graph_generator.h"
#include "helpers.h"
#include "sim/simulator.h"

namespace procon::sim {
namespace {

using procon::testing::fig2_system;

TEST(Trace, EmptyByDefault) {
  const auto r = simulate(fig2_system(), SimOptions{.horizon = 10'000});
  EXPECT_TRUE(r.trace.empty());
}

TEST(Trace, CollectsOneEventPerFiring) {
  SimOptions opts{.horizon = 30'000};
  opts.collect_trace = true;
  const auto r = simulate(fig2_system(), opts);
  std::uint64_t firings = 0;
  for (const auto& app : r.apps) {
    for (const auto& a : app.actors) firings += a.firings;
  }
  // Every completed firing has a trace event; events for firings still in
  // flight at the horizon may exceed the completion count slightly.
  EXPECT_GE(r.trace.size(), firings);
  EXPECT_LE(r.trace.size(), firings + 6);  // at most one in flight per actor
}

TEST(Trace, EventsWellFormed) {
  SimOptions opts{.horizon = 30'000};
  opts.collect_trace = true;
  const auto r = simulate(fig2_system(), opts);
  for (const auto& e : r.trace) {
    EXPECT_LE(e.start, e.end);
    EXPECT_GE(e.start, 0);
    EXPECT_LT(e.node, 3u);
    EXPECT_LT(e.app, 2u);
    EXPECT_LT(e.actor, 3u);
  }
}

void expect_no_node_overlap(const SimResult& r) {
  std::map<std::uint32_t, std::vector<std::pair<sdf::Time, sdf::Time>>> per_node;
  for (const auto& e : r.trace) {
    per_node[e.node].emplace_back(e.start, e.end);
  }
  for (auto& [node, intervals] : per_node) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_LE(intervals[i - 1].second, intervals[i].first)
          << "overlap on node " << node << ": [" << intervals[i - 1].first << ","
          << intervals[i - 1].second << ") vs [" << intervals[i].first << ","
          << intervals[i].second << ")";
    }
  }
}

TEST(Trace, NonPreemptiveNodesNeverOverlapFcfs) {
  SimOptions opts{.horizon = 50'000};
  opts.collect_trace = true;
  expect_no_node_overlap(simulate(fig2_system(), opts));
}

TEST(Trace, NonPreemptiveNodesNeverOverlapRoundRobin) {
  SimOptions opts{.horizon = 50'000};
  opts.arbitration = Arbitration::RoundRobin;
  opts.collect_trace = true;
  expect_no_node_overlap(simulate(fig2_system(), opts));
}

// Property sweep: the invariant holds on random workloads, including with
// stochastic execution times.
class TraceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceProperty, NoOverlapOnRandomWorkloads) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 6;
  auto apps = gen::generate_graphs(rng, gopts, 3);
  std::size_t max_actors = 0;
  for (const auto& g : apps) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(apps, plat);
  const platform::System sys(std::move(apps), std::move(plat), std::move(map));

  SimOptions opts{.horizon = 50'000};
  opts.collect_trace = true;
  expect_no_node_overlap(simulate(sys, opts));

  // Same with sampled execution times.
  std::vector<sdf::ExecTimeModel> models;
  for (const auto& g : sys.apps()) {
    sdf::ExecTimeModel m;
    for (const auto& a : g.actors()) {
      m.push_back(sdf::ExecTimeDistribution::uniform(
          std::max<sdf::Time>(1, a.exec_time / 2), a.exec_time * 2));
    }
    models.push_back(std::move(m));
  }
  opts.exec_models = models;
  expect_no_node_overlap(simulate(sys, opts));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Trace, BusyTimeMatchesTraceSum) {
  SimOptions opts{.horizon = 50'000};
  opts.collect_trace = true;
  const auto r = simulate(fig2_system(), opts);
  // Utilisation derived from the trace must match the reported utilisation
  // (clipping at the horizon explains small differences).
  std::vector<double> busy(r.node_utilisation.size(), 0.0);
  for (const auto& e : r.trace) {
    const auto end = std::min(e.end, r.horizon);
    const auto start = std::min(e.start, r.horizon);
    busy[e.node] += static_cast<double>(end - start);
  }
  for (std::size_t n = 0; n < busy.size(); ++n) {
    EXPECT_NEAR(busy[n] / static_cast<double>(r.horizon), r.node_utilisation[n],
                0.01)
        << "node " << n;
  }
}

}  // namespace
}  // namespace procon::sim
