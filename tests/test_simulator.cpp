#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "analysis/throughput.h"
#include "helpers.h"

namespace procon::sim {
namespace {

using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;
using procon::testing::fig2_graph_b_reversed;
using procon::testing::fig2_system;

TEST(Simulator, SingleAppMatchesAnalyticalPeriod) {
  const auto sys = fig2_system().restrict_to({0});
  const SimResult r = simulate(sys, SimOptions{.horizon = 100'000});
  ASSERT_EQ(r.apps.size(), 1u);
  ASSERT_TRUE(r.apps[0].converged);
  EXPECT_NEAR(r.apps[0].average_period, 300.0, 1e-6);
  EXPECT_NEAR(r.apps[0].worst_period, 300.0, 1e-6);
}

TEST(Simulator, PaperExampleBothAppsAchieve300) {
  // Section 3.1: "the period that these application graphs would achieve in
  // practice is only 300 time units" - contention interleaves perfectly.
  const SimResult r = simulate(fig2_system(), SimOptions{.horizon = 100'000});
  ASSERT_EQ(r.apps.size(), 2u);
  for (const auto& app : r.apps) {
    ASSERT_TRUE(app.converged);
    EXPECT_NEAR(app.average_period, 300.0, 1.0);
  }
}

TEST(Simulator, ReversedCycleAchieves400) {
  // Section 3.1: with B's cycle reversed the simulated period becomes 400
  // while every probabilistic attribute stays identical.
  std::vector<sdf::Graph> apps{fig2_graph_a(), fig2_graph_b_reversed()};
  platform::Platform plat = platform::Platform::homogeneous(3);
  platform::Mapping m = platform::Mapping::by_index(apps, plat);
  const platform::System sys(std::move(apps), std::move(plat), std::move(m));
  const SimResult r = simulate(sys, SimOptions{.horizon = 100'000});
  for (const auto& app : r.apps) {
    ASSERT_TRUE(app.converged);
    EXPECT_NEAR(app.average_period, 400.0, 1.0);
  }
}

TEST(Simulator, UtilisationBounded) {
  const SimResult r = simulate(fig2_system(), SimOptions{.horizon = 50'000});
  ASSERT_EQ(r.node_utilisation.size(), 3u);
  for (const double u : r.node_utilisation) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  // Every node serves 200 units per 300-unit period (node 0: a0 once at
  // 100 plus b0 twice at 50): utilisation ~ 2/3.
  for (const double u : r.node_utilisation) {
    EXPECT_NEAR(u, 2.0 / 3.0, 0.02);
  }
}

TEST(Simulator, WaitingTimesRecorded) {
  const SimResult r = simulate(fig2_system(), SimOptions{.horizon = 50'000});
  // Under contention some actor must have waited at least once.
  sdf::Time total_wait = 0;
  for (const auto& app : r.apps) {
    for (const auto& a : app.actors) total_wait += a.total_waiting;
  }
  EXPECT_GT(total_wait, 0);
}

TEST(Simulator, RoundRobinAlsoAchieves300OnPaperExample) {
  const SimResult r = simulate(
      fig2_system(),
      SimOptions{.horizon = 100'000, .arbitration = Arbitration::RoundRobin});
  for (const auto& app : r.apps) {
    ASSERT_TRUE(app.converged);
    EXPECT_NEAR(app.average_period, 300.0, 1.0);
  }
}

TEST(Simulator, TdmaFairSlotsBoundedByWcrt) {
  const SimResult r = simulate(
      fig2_system(),
      SimOptions{.horizon = 200'000, .arbitration = Arbitration::Tdma});
  // The TDMA WCRT-based period bound for this system is 650 (see
  // test_wcrt); the simulated TDMA period must respect it.
  for (const auto& app : r.apps) {
    ASSERT_TRUE(app.converged);
    EXPECT_LE(app.average_period, 650.0 + 1.0);
    EXPECT_GE(app.average_period, 300.0 - 1e-6);  // cannot beat isolation
  }
}

TEST(Simulator, DisjointNodesNoInterference) {
  // Map the two apps on disjoint node sets: both achieve isolation period.
  std::vector<sdf::Graph> apps{fig2_graph_a(), fig2_graph_b()};
  platform::Platform plat = platform::Platform::homogeneous(6);
  platform::Mapping m(apps);
  for (sdf::ActorId a = 0; a < 3; ++a) {
    m.assign(0, a, a);
    m.assign(1, a, 3 + a);
  }
  const platform::System sys(std::move(apps), std::move(plat), std::move(m));
  const SimResult r = simulate(sys, SimOptions{.horizon = 60'000});
  EXPECT_NEAR(r.apps[0].average_period, 300.0, 1e-6);
  EXPECT_NEAR(r.apps[1].average_period, 300.0, 1e-6);
}

TEST(Simulator, SharedEverythingSerialises) {
  // All actors of one app on a single node: the period becomes the total
  // sequential work (300 for graph A) - still 300 here since A is
  // sequential anyway, so use two apps to see real serialisation.
  std::vector<sdf::Graph> apps{fig2_graph_a(), fig2_graph_b()};
  platform::Platform plat = platform::Platform::homogeneous(1);
  platform::Mapping m(apps);
  for (sdf::ActorId a = 0; a < 3; ++a) {
    m.assign(0, a, 0);
    m.assign(1, a, 0);
  }
  const platform::System sys(std::move(apps), std::move(plat), std::move(m));
  const SimResult r = simulate(sys, SimOptions{.horizon = 200'000});
  // One node, 600 units of work per combined iteration: each app's period
  // must converge to ~600.
  for (const auto& app : r.apps) {
    ASSERT_TRUE(app.converged);
    EXPECT_NEAR(app.average_period, 600.0, 5.0);
  }
}

TEST(Simulator, IterationTimesMonotone) {
  const SimResult r = simulate(fig2_system(), SimOptions{.horizon = 50'000});
  for (const auto& app : r.apps) {
    for (std::size_t i = 1; i < app.iteration_times.size(); ++i) {
      EXPECT_LE(app.iteration_times[i - 1], app.iteration_times[i]);
    }
  }
}

TEST(Simulator, ShortHorizonUnconverged) {
  const SimResult r = simulate(fig2_system(), SimOptions{.horizon = 400});
  for (const auto& app : r.apps) {
    EXPECT_FALSE(app.converged);
  }
}

TEST(Simulator, InvalidHorizonThrows) {
  EXPECT_THROW((void)simulate(fig2_system(), SimOptions{.horizon = 0}),
               std::invalid_argument);
}

TEST(Simulator, InvalidSystemThrows) {
  sdf::Graph dead("dead");
  const auto x = dead.add_actor("x", 1);
  const auto y = dead.add_actor("y", 1);
  dead.add_channel(x, y, 1, 1, 0);
  dead.add_channel(y, x, 1, 1, 0);
  std::vector<sdf::Graph> apps{dead};
  platform::Platform plat = platform::Platform::homogeneous(2);
  platform::Mapping m = platform::Mapping::by_index(apps, plat);
  const platform::System sys(std::move(apps), std::move(plat), std::move(m));
  EXPECT_THROW((void)simulate(sys), sdf::GraphError);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const SimResult r1 = simulate(fig2_system(), SimOptions{.horizon = 30'000});
  const SimResult r2 = simulate(fig2_system(), SimOptions{.horizon = 30'000});
  ASSERT_EQ(r1.apps.size(), r2.apps.size());
  for (std::size_t i = 0; i < r1.apps.size(); ++i) {
    EXPECT_EQ(r1.apps[i].iteration_times, r2.apps[i].iteration_times);
  }
  EXPECT_EQ(r1.events_processed, r2.events_processed);
}

TEST(Metrics, FinaliseHandlesDegenerateInputs) {
  AppSimResult app;
  finalise_app_metrics(app, 0.25, 4);
  EXPECT_FALSE(app.converged);
  app.iteration_times = {100};
  finalise_app_metrics(app, 0.25, 4);
  EXPECT_FALSE(app.converged);
  EXPECT_EQ(app.iterations, 1u);
  app.iteration_times = {100, 200, 300, 400, 500};
  finalise_app_metrics(app, 0.25, 4);
  EXPECT_TRUE(app.converged);
  EXPECT_NEAR(app.average_period, 100.0, 1e-9);
  EXPECT_NEAR(app.worst_period, 100.0, 1e-9);
}

TEST(Metrics, WorstPeriodCapturesJitter) {
  AppSimResult app;
  app.iteration_times = {0, 100, 150, 350, 450, 550};
  finalise_app_metrics(app, 0.0, 2);
  EXPECT_NEAR(app.worst_period, 200.0, 1e-9);  // the 150 -> 350 gap
  EXPECT_NEAR(app.average_period, 110.0, 1e-9);
}

}  // namespace
}  // namespace procon::sim
