// End-to-end tests of the net:: cluster tier: loopback AnalysisServers on
// ephemeral ports, a routed ClusterClient, and bitwise identity of every
// routed result against a direct in-process AnalysisService oracle —
// including across a membership change that migrates tenants.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "api/service.h"
#include "helpers.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/router.h"
#include "net/server.h"

namespace procon::net {
namespace {

platform::System one_app_system(sdf::Graph g) {
  std::vector<sdf::Graph> apps;
  apps.push_back(std::move(g));
  platform::Platform plat = platform::Platform::homogeneous(apps[0].actor_count());
  platform::Mapping map = platform::Mapping::by_index(apps, plat);
  return platform::System(std::move(apps), std::move(plat), std::move(map));
}

std::vector<std::uint8_t> payload_bytes(const api::QueryValue& v) {
  WireWriter w;
  encode_query_payload(w, v);
  return w.take();
}

TEST(Router, DeterministicAndOrderIndependent) {
  const std::vector<std::string> a{":1000", ":2000", ":3000"};
  const std::vector<std::string> b{":3000", ":1000", ":2000"};
  const Router ra(a);
  const Router rb(b);
  for (std::uint64_t fp = 1; fp < 2000; fp += 7) {
    EXPECT_EQ(ra.endpoint_for(fp), rb.endpoint_for(fp));
  }
}

TEST(Router, RejectsEmptyAndDuplicateEndpoints) {
  EXPECT_THROW(Router({}), std::invalid_argument);
  EXPECT_THROW(Router({":1", ":2", ":1"}), std::invalid_argument);
}

TEST(Router, BalancesAndMovesFewKeysOnGrowth) {
  const Router r3({":1", ":2", ":3"});
  const Router r4({":1", ":2", ":3", ":4"});
  std::vector<std::size_t> load(3, 0);
  std::size_t moved = 0;
  const std::size_t keys = 4096;
  for (std::uint64_t fp = 0; fp < keys; ++fp) {
    ++load[r3.shard_for(fp)];
    if (r3.endpoint_for(fp) != r4.endpoint_for(fp)) ++moved;
  }
  // Balance: no shard holds more than 60% of what uniform would triple.
  for (const std::size_t l : load) {
    EXPECT_GT(l, keys / 8);
    EXPECT_LT(l, keys / 2);
  }
  // Consistency: growing 3 -> 4 should move roughly 1/4 of the keys, and
  // certainly far less than a full reshuffle (which moves ~3/4).
  EXPECT_LT(moved, keys / 2);
  EXPECT_GT(moved, keys / 16);
}

TEST(Cluster, RoutedQueriesMatchDirectOracleBitwise) {
  AnalysisServer s1{ServerOptions{}};
  AnalysisServer s2{ServerOptions{}};
  ClusterClient cluster(ClusterOptions{
      .endpoints = {":" + std::to_string(s1.port()),
                    ":" + std::to_string(s2.port())}});
  api::AnalysisService oracle{api::ServiceOptions{}};

  std::vector<platform::System> systems;
  systems.push_back(procon::testing::fig2_system());
  systems.push_back(one_app_system(procon::testing::fig2_graph_a()));
  systems.push_back(one_app_system(procon::testing::fig2_graph_b()));
  systems.push_back(one_app_system(procon::testing::two_actor_cycle(30, 40)));

  std::vector<TenantId> routed;
  std::vector<api::SystemId> direct;
  for (const auto& sys : systems) {
    routed.push_back(cluster.register_system(sys));
    direct.push_back(oracle.register_system(sys));
  }

  // Pipeline a mixed workload over the wire, then compare every decoded
  // result's payload bytes with the in-process oracle.
  std::vector<api::QueryDesc> descs;
  std::vector<PendingQuery> pending;
  std::vector<std::size_t> tenant_of;
  for (std::size_t k = 0; k < 24; ++k) {
    api::QueryDesc d;
    d.kind = static_cast<api::QueryKind>(k % 7);
    d.sim.horizon = 10'000;
    const std::size_t t = k % systems.size();
    descs.push_back(d);
    tenant_of.push_back(t);
    pending.push_back(cluster.submit(routed[t], d));
  }
  for (std::size_t k = 0; k < pending.size(); ++k) {
    const api::QueryValue over_wire = cluster.await(pending[k]);
    const api::QueryValue local =
        oracle.submit(direct[tenant_of[k]], descs[k]).get();
    EXPECT_EQ(payload_bytes(over_wire), payload_bytes(local)) << "query " << k;
  }

  // Every tenant's recorded home agrees with the ring. (Which shard that
  // is depends on the servers' ephemeral port numbers — the endpoint
  // strings seed the ring — so asserting the tenants *spread* would be
  // run-dependent; ring balance is covered by
  // Router.BalancesAndMovesFewKeysOnGrowth above.)
  for (std::size_t t = 0; t < systems.size(); ++t) {
    EXPECT_EQ(cluster.tenant_endpoint(routed[t]),
              cluster.router().endpoint_for(systems[t].fingerprint()));
  }

  // The shards' wire-visible counters account for every routed submit.
  std::uint64_t submitted = 0;
  for (std::size_t s = 0; s < cluster.router().shard_count(); ++s) {
    submitted += cluster.stats(s).service.submitted;
  }
  EXPECT_EQ(submitted, pending.size());
}

TEST(Cluster, IdenticalTenantsShareOneRemoteSession) {
  AnalysisServer server{ServerOptions{}};
  ClusterClient cluster(ClusterOptions{
      .endpoints = {":" + std::to_string(server.port())}});
  // Bitwise-identical systems fingerprint equal, route to the same shard,
  // and share one resident session there.
  const TenantId a = cluster.register_system(procon::testing::fig2_system());
  const TenantId b = cluster.register_system(procon::testing::fig2_system());
  EXPECT_EQ(cluster.tenant_endpoint(a), cluster.tenant_endpoint(b));
  (void)cluster.query(a, api::QueryDesc{});
  (void)cluster.query(b, api::QueryDesc{});
  EXPECT_EQ(server.service().session_count(), 1u);
}

TEST(Cluster, MigrationPreservesResultsBitwise) {
  AnalysisServer s1{ServerOptions{}};
  AnalysisServer s2{ServerOptions{}};
  AnalysisServer s3{ServerOptions{}};
  const std::string e1 = ":" + std::to_string(s1.port());
  const std::string e2 = ":" + std::to_string(s2.port());
  const std::string e3 = ":" + std::to_string(s3.port());

  // Start with one shard; all tenants live there.
  ClusterClient cluster(ClusterOptions{.endpoints = {e1}});
  std::vector<platform::System> systems;
  systems.push_back(procon::testing::fig2_system());
  systems.push_back(one_app_system(procon::testing::fig2_graph_a()));
  systems.push_back(one_app_system(procon::testing::two_actor_cycle(5, 9)));
  std::vector<TenantId> ids;
  std::vector<std::vector<std::uint8_t>> before;
  api::QueryDesc contention;
  contention.kind = api::QueryKind::Contention;
  for (const auto& sys : systems) {
    ids.push_back(cluster.register_system(sys));
    EXPECT_EQ(cluster.tenant_endpoint(ids.back()), e1);
    before.push_back(payload_bytes(cluster.query(ids.back(), contention)));
  }

  // Grow to three shards: displaced tenants ride SnapshotRequest /
  // SnapshotReply / RegisterSystem to their new homes.
  const std::size_t migrated = cluster.set_endpoints({e1, e2, e3});
  std::size_t moved_homes = 0;
  for (const TenantId id : ids) {
    if (cluster.tenant_endpoint(id) != e1) ++moved_homes;
  }
  EXPECT_EQ(migrated, moved_homes);

  // Results after migration are byte-identical to before — for every
  // tenant, wherever it now lives.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(payload_bytes(cluster.query(ids[i], contention)), before[i]);
  }

  // Shrink back to one shard: every tenant returns to e1, still bitwise.
  (void)cluster.set_endpoints({e1});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(cluster.tenant_endpoint(ids[i]), e1);
    EXPECT_EQ(payload_bytes(cluster.query(ids[i], contention)), before[i]);
  }
}

TEST(Cluster, ServerSendsErrorFrameForUnknownTenant) {
  AnalysisServer server{ServerOptions{}};
  ShardConnection conn(":" + std::to_string(server.port()));
  WireWriter w;
  w.u32(9999);  // never registered
  api::QueryDesc d;
  encode_query_desc(w, d);
  const Frame reply = conn.roundtrip(FrameType::Query, w.view());
  EXPECT_EQ(reply.type, FrameType::Error);
  WireReader r(reply.payload);
  EXPECT_FALSE(r.str().empty());
}

TEST(Cluster, ServerSurvivesGarbagePayloadAndServesNextClient) {
  AnalysisServer server{ServerOptions{}};
  {
    // A well-framed Query whose payload is garbage earns an Error frame —
    // the codec's bounds checks turn it away before it can wedge anything.
    ShardConnection conn(":" + std::to_string(server.port()));
    const std::vector<std::uint8_t> garbage{0xFF, 0xFF, 0xFF, 0x7F};
    const Frame reply = conn.roundtrip(FrameType::Query, garbage);
    EXPECT_EQ(reply.type, FrameType::Error);
  }
  // The next, well-behaved client is served normally.
  ClusterClient cluster(ClusterOptions{
      .endpoints = {":" + std::to_string(server.port())}});
  const TenantId t = cluster.register_system(procon::testing::fig2_system());
  const api::QueryValue v = cluster.query(t, api::QueryDesc{});
  EXPECT_EQ(v.index(), 0u);
}

}  // namespace
}  // namespace procon::net
