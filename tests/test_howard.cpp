#include "analysis/howard.h"

#include <gtest/gtest.h>

#include "gen/graph_generator.h"
#include "helpers.h"
#include "sdf/repetition.h"
#include "util/rng.h"

namespace procon::analysis {
namespace {

using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;
using sdf::Graph;

Hsdf expand_closed(const Graph& g) {
  const Graph closed = g.with_self_loops();
  const auto q = sdf::compute_repetition_vector(closed);
  return expand_to_hsdf(closed, *q, {});
}

TEST(Howard, PaperGraphsPeriod300) {
  EXPECT_NEAR(mcr_howard(expand_closed(fig2_graph_a())).ratio, 300.0, 1e-6);
  EXPECT_NEAR(mcr_howard(expand_closed(fig2_graph_b())).ratio, 300.0, 1e-6);
}

TEST(Howard, FractionalRatio) {
  Graph g;
  const auto a = g.add_actor("a", 5);
  const auto b = g.add_actor("b", 4);
  const auto c = g.add_actor("c", 4);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, c, 1, 1, 0);
  g.add_channel(c, a, 1, 1, 2);
  EXPECT_NEAR(mcr_howard(expand_closed(g)).ratio, 6.5, 1e-6);
}

TEST(Howard, DeadlockDetected) {
  Graph g;
  const auto x = g.add_actor("x", 1);
  const auto y = g.add_actor("y", 1);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 0);
  const auto q = sdf::compute_repetition_vector(g);
  EXPECT_TRUE(mcr_howard(expand_to_hsdf(g, *q, {})).deadlocked);
}

TEST(Howard, AcyclicReported) {
  Graph g;
  const auto x = g.add_actor("x", 5);
  const auto y = g.add_actor("y", 5);
  g.add_channel(x, y, 1, 1, 0);
  const auto q = sdf::compute_repetition_vector(g);
  const McrResult r = mcr_howard(expand_to_hsdf(g, *q, {}));
  EXPECT_FALSE(r.has_cycle);
  EXPECT_FALSE(r.deadlocked);
}

TEST(Howard, EmptyGraph) {
  EXPECT_FALSE(mcr_howard(Hsdf{}).has_cycle);
}

TEST(Howard, MultipleComponentsTakesMax) {
  // Two disjoint cycles with different ratios: MCR is the larger one.
  Hsdf h;
  h.nodes = {HsdfNode{0, 0, 10.0}, HsdfNode{1, 0, 10.0},   // cycle ratio 20
             HsdfNode{2, 0, 3.0}, HsdfNode{3, 0, 4.0}};    // cycle ratio 7
  h.edges = {HsdfEdge{0, 1, 0}, HsdfEdge{1, 0, 1},
             HsdfEdge{2, 3, 0}, HsdfEdge{3, 2, 1}};
  EXPECT_NEAR(mcr_howard(h).ratio, 20.0, 1e-9);
}

TEST(Howard, ParallelEdgesPickTighterConstraint) {
  // Two edges between the same nodes: the 0-token edge dominates the
  // 2-token one, halving nothing - ratio is (5+5)/1.
  Hsdf h;
  h.nodes = {HsdfNode{0, 0, 5.0}, HsdfNode{1, 0, 5.0}};
  h.edges = {HsdfEdge{0, 1, 0}, HsdfEdge{0, 1, 2}, HsdfEdge{1, 0, 1}};
  EXPECT_NEAR(mcr_howard(h).ratio, 10.0, 1e-9);
}

// The central property: Howard's and the Lawler reference agree on random
// expansions (the fast path can safely replace the reference).
class HowardCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HowardCrossValidation, MatchesBinarySearch) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions opts;
  opts.min_actors = 4;
  opts.max_actors = 10;
  opts.max_repetition = 4;
  const Graph g = gen::generate_graph(rng, opts, "rnd");
  const Hsdf h = expand_closed(g);
  const McrResult reference = mcr_binary_search(h);
  const McrResult howard = mcr_howard(h);
  ASSERT_EQ(reference.deadlocked, howard.deadlocked);
  ASSERT_EQ(reference.has_cycle, howard.has_cycle);
  EXPECT_NEAR(howard.ratio, reference.ratio,
              1e-6 * std::max(1.0, reference.ratio))
      << "seed=" << GetParam();
}

TEST_P(HowardCrossValidation, MatchesOnFractionalResponseTimes) {
  // The estimator feeds fractional execution times into the MCR engine;
  // both engines must agree there too.
  util::Rng rng(GetParam() + 7000);
  gen::GeneratorOptions opts;
  opts.min_actors = 4;
  opts.max_actors = 8;
  const Graph g = gen::generate_graph(rng, opts, "rnd").with_self_loops();
  const auto q = sdf::compute_repetition_vector(g);
  std::vector<double> times(g.actor_count());
  for (auto& t : times) t = rng.uniform_real(0.5, 120.0);
  const Hsdf h = expand_to_hsdf(g, *q, times);
  const McrResult reference = mcr_binary_search(h);
  const McrResult howard = mcr_howard(h);
  EXPECT_NEAR(howard.ratio, reference.ratio,
              1e-6 * std::max(1.0, reference.ratio))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HowardCrossValidation,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace procon::analysis
