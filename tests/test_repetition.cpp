#include "sdf/repetition.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace procon::sdf {
namespace {

TEST(Repetition, PaperGraphA) {
  const auto q = compute_repetition_vector(procon::testing::fig2_graph_a());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1u);
  EXPECT_EQ((*q)[1], 2u);
  EXPECT_EQ((*q)[2], 1u);
}

TEST(Repetition, PaperGraphB) {
  const auto q = compute_repetition_vector(procon::testing::fig2_graph_b());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 2u);
  EXPECT_EQ((*q)[1], 1u);
  EXPECT_EQ((*q)[2], 1u);
}

TEST(Repetition, Figure1Graph) {
  // The introduction's example (Figure 1): rates chosen so the balance
  // equations have the canonical solution below.
  Graph g("fig1");
  const auto a = g.add_actor("A", 5);
  const auto b = g.add_actor("B", 7);
  const auto c = g.add_actor("C", 6);
  const auto d = g.add_actor("D", 10);
  g.add_channel(a, b, 2, 1, 0);   // q[A]*2 == q[B]*1
  g.add_channel(b, c, 3, 3, 0);   // q[B] == q[C]
  g.add_channel(c, d, 1, 4, 0);   // q[C]*1 == q[D]*4
  g.add_channel(d, a, 2, 1, 2);   // q[D]*2 == q[A]*1
  const auto q = compute_repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 2u);  // A
  EXPECT_EQ((*q)[1], 4u);  // B
  EXPECT_EQ((*q)[2], 4u);  // C
  EXPECT_EQ((*q)[3], 1u);  // D
}

TEST(Repetition, HomogeneousGraphAllOnes) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, a, 1, 1, 1);
  const auto q = compute_repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1u);
  EXPECT_EQ((*q)[1], 1u);
}

TEST(Repetition, InconsistentGraphRejected) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 2, 1, 0);  // wants q[b] = 2 q[a]
  g.add_channel(b, a, 2, 1, 0);  // wants q[a] = 2 q[b]  -> contradiction
  EXPECT_FALSE(compute_repetition_vector(g).has_value());
  EXPECT_FALSE(is_consistent(g));
}

TEST(Repetition, SelfLoopMismatchInconsistent) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  g.add_channel(a, a, 2, 1, 1);  // q[a]*2 == q[a]*1 impossible
  EXPECT_FALSE(is_consistent(g));
}

TEST(Repetition, IsolatedActorsGetOne) {
  Graph g;
  g.add_actor("a", 1);
  g.add_actor("b", 1);
  const auto q = compute_repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1u);
  EXPECT_EQ((*q)[1], 1u);
}

TEST(Repetition, ComponentsNormalisedIndependently) {
  Graph g;
  // Component 1: a -> b with 3:1 (q = [1, 3]).
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 3, 1, 0);
  // Component 2: c -> d with 1:2 (q = [2, 1]).
  const auto c = g.add_actor("c", 1);
  const auto d = g.add_actor("d", 1);
  g.add_channel(c, d, 1, 2, 0);
  const auto q = compute_repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 1u);
  EXPECT_EQ((*q)[1], 3u);
  EXPECT_EQ((*q)[2], 2u);
  EXPECT_EQ((*q)[3], 1u);
}

TEST(Repetition, MinimalityCoprime) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 6, 4, 0);   // q[a]*6 == q[b]*4 -> q = [2, 3]
  g.add_channel(b, a, 4, 6, 12);
  const auto q = compute_repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ((*q)[0], 2u);
  EXPECT_EQ((*q)[1], 3u);
}

TEST(Repetition, BalanceEquationsHold) {
  const Graph g = procon::testing::fig2_graph_a();
  const auto q = compute_repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  for (const Channel& c : g.channels()) {
    EXPECT_EQ((*q)[c.src] * c.prod_rate, (*q)[c.dst] * c.cons_rate);
  }
}

TEST(Repetition, RepetitionSumAndWorkload) {
  const Graph g = procon::testing::fig2_graph_a();
  const auto q = compute_repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(repetition_sum(*q), 4u);
  // 1*100 + 2*50 + 1*100 = 300 (equals Per(A): the graph is sequential).
  EXPECT_EQ(iteration_workload(g, *q), 300);
}

}  // namespace
}  // namespace procon::sdf
