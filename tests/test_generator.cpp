#include "gen/graph_generator.h"

#include <gtest/gtest.h>

#include "analysis/throughput.h"
#include "sdf/algorithms.h"
#include "sdf/repetition.h"

namespace procon::gen {
namespace {

TEST(Generator, RespectsActorCountRange) {
  util::Rng rng(1);
  GeneratorOptions opts;
  opts.min_actors = 8;
  opts.max_actors = 10;
  for (int i = 0; i < 20; ++i) {
    const sdf::Graph g = generate_graph(rng, opts, "g");
    EXPECT_GE(g.actor_count(), 8u);
    EXPECT_LE(g.actor_count(), 10u);
  }
}

TEST(Generator, RespectsExecTimeRange) {
  util::Rng rng(2);
  GeneratorOptions opts;
  opts.min_exec_time = 10;
  opts.max_exec_time = 100;
  const sdf::Graph g = generate_graph(rng, opts, "g");
  for (const sdf::Actor& a : g.actors()) {
    EXPECT_GE(a.exec_time, 10);
    EXPECT_LE(a.exec_time, 100);
  }
}

TEST(Generator, RepetitionBounded) {
  util::Rng rng(3);
  GeneratorOptions opts;
  opts.max_repetition = 4;
  const sdf::Graph g = generate_graph(rng, opts, "g");
  const auto q = sdf::compute_repetition_vector(g);
  ASSERT_TRUE(q.has_value());
  for (const auto v : *q) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 4u);
  }
}

TEST(Generator, InvalidOptionsThrow) {
  util::Rng rng(4);
  GeneratorOptions bad;
  bad.min_actors = 1;  // below the minimum of 2
  EXPECT_THROW((void)generate_graph(rng, bad, "g"), std::invalid_argument);
  GeneratorOptions bad2;
  bad2.min_exec_time = 5;
  bad2.max_exec_time = 2;
  EXPECT_THROW((void)generate_graph(rng, bad2, "g"), std::invalid_argument);
}

TEST(Generator, NamesAreSequentialLetters) {
  util::Rng rng(5);
  const auto graphs = generate_graphs(rng, GeneratorOptions{}, 3);
  ASSERT_EQ(graphs.size(), 3u);
  EXPECT_EQ(graphs[0].name(), "A");
  EXPECT_EQ(graphs[1].name(), "B");
  EXPECT_EQ(graphs[2].name(), "C");
}

TEST(Generator, PaperWorkloadIsTenGraphs) {
  const auto graphs = paper_workload(42);
  ASSERT_EQ(graphs.size(), 10u);
  for (const auto& g : graphs) {
    EXPECT_GE(g.actor_count(), 8u);
    EXPECT_LE(g.actor_count(), 10u);
  }
  EXPECT_EQ(graphs[9].name(), "J");
}

TEST(Generator, PaperWorkloadDeterministic) {
  const auto g1 = paper_workload(7);
  const auto g2 = paper_workload(7);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    ASSERT_EQ(g1[i].actor_count(), g2[i].actor_count());
    for (sdf::ActorId a = 0; a < g1[i].actor_count(); ++a) {
      EXPECT_EQ(g1[i].actor(a).exec_time, g2[i].actor(a).exec_time);
    }
  }
}

TEST(Generator, ExtraTokensIncreasePipelining) {
  util::Rng rng1(11), rng2(11);
  GeneratorOptions base;
  GeneratorOptions pipelined = base;
  pipelined.extra_token_iterations = 2;
  const sdf::Graph g1 = generate_graph(rng1, base, "g");
  const sdf::Graph g2 = generate_graph(rng2, pipelined, "g");
  // Same structure, strictly more tokens somewhere.
  std::uint64_t t1 = 0, t2 = 0;
  for (const auto& c : g1.channels()) t1 += c.initial_tokens;
  for (const auto& c : g2.channels()) t2 += c.initial_tokens;
  EXPECT_GT(t2, t1);
  // More tokens can only lower (or keep) the analytic period.
  const double p1 = analysis::compute_period(g1).period;
  const double p2 = analysis::compute_period(g2).period;
  EXPECT_LE(p2, p1 + 1e-6);
}

// The central generator property sweep: every generated graph satisfies the
// evaluation section's requirements (consistent, strongly connected,
// deadlock-free, analysable).
class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, ValidGraphEveryTime) {
  util::Rng rng(GetParam());
  const sdf::Graph g = generate_graph(rng, GeneratorOptions{}, "g");
  EXPECT_TRUE(sdf::is_consistent(g)) << "seed=" << GetParam();
  EXPECT_TRUE(sdf::is_strongly_connected(g)) << "seed=" << GetParam();
  EXPECT_TRUE(sdf::is_deadlock_free(g)) << "seed=" << GetParam();
  const auto period = analysis::compute_period(g);
  EXPECT_FALSE(period.deadlocked) << "seed=" << GetParam();
  EXPECT_GT(period.period, 0.0) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace procon::gen
