#include "prob/compose.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prob/waiting_time.h"
#include "util/rng.h"

namespace procon::prob {
namespace {

ActorLoad make_load(double tau, double p) {
  ActorLoad l;
  l.exec_time = tau;
  l.probability = p;
  l.mean_blocking = tau / 2.0;
  return l;
}

TEST(Compose, ProbabilityFormulaEq6) {
  EXPECT_DOUBLE_EQ(compose_probability(0.5, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(compose_probability(0.0, 0.3), 0.3);
  EXPECT_DOUBLE_EQ(compose_probability(1.0, 0.3), 1.0);
}

TEST(Compose, IdentityElement) {
  const Composite id = Composite::identity();
  const Composite x = to_composite(make_load(80.0, 0.4));
  const Composite l = compose(id, x);
  const Composite r = compose(x, id);
  EXPECT_DOUBLE_EQ(l.probability, x.probability);
  EXPECT_DOUBLE_EQ(l.weighted_blocking, x.weighted_blocking);
  EXPECT_DOUBLE_EQ(r.probability, x.probability);
  EXPECT_DOUBLE_EQ(r.weighted_blocking, x.weighted_blocking);
}

TEST(Compose, MatchesEq7TwoActors) {
  const ActorLoad a = make_load(100.0, 1.0 / 3.0);
  const ActorLoad b = make_load(50.0, 1.0 / 3.0);
  const Composite ab = compose(to_composite(a), to_composite(b));
  // Eq. 7 expanded by hand.
  const double muPa = 50.0 / 3.0;
  const double muPb = 25.0 / 3.0;
  EXPECT_NEAR(ab.weighted_blocking,
              muPa * (1.0 + 1.0 / 6.0) + muPb * (1.0 + 1.0 / 6.0), 1e-12);
  EXPECT_NEAR(ab.probability, 1.0 / 3.0 + 1.0 / 3.0 - 1.0 / 9.0, 1e-12);
}

TEST(Compose, CommutativeExactly) {
  const Composite x = to_composite(make_load(80.0, 0.4));
  const Composite y = to_composite(make_load(30.0, 0.7));
  const Composite xy = compose(x, y);
  const Composite yx = compose(y, x);
  EXPECT_DOUBLE_EQ(xy.probability, yx.probability);
  EXPECT_DOUBLE_EQ(xy.weighted_blocking, yx.weighted_blocking);
}

TEST(Compose, ProbabilityAssociativeExactly) {
  // (+) is exactly associative (the paper proves it); check numerically.
  const double pa = 0.3, pb = 0.5, pc = 0.8;
  const double left = compose_probability(compose_probability(pa, pb), pc);
  const double right = compose_probability(pa, compose_probability(pb, pc));
  EXPECT_NEAR(left, right, 1e-15);
}

TEST(Compose, WaitingAssociativeToSecondOrder) {
  // (x) is associative only to second order: the discrepancy between the
  // two association orders must be bounded by third-order products.
  const Composite a = to_composite(make_load(100.0, 0.2));
  const Composite b = to_composite(make_load(60.0, 0.25));
  const Composite c = to_composite(make_load(40.0, 0.15));
  const Composite left = compose(compose(a, b), c);
  const Composite right = compose(a, compose(b, c));
  EXPECT_NEAR(left.probability, right.probability, 1e-12);  // (+) exact
  const double third_order_scale =
      (a.weighted_blocking + b.weighted_blocking + c.weighted_blocking) *
      (a.probability * b.probability + a.probability * c.probability +
       b.probability * c.probability);
  EXPECT_LE(std::abs(left.weighted_blocking - right.weighted_blocking),
            third_order_scale);
}

TEST(Compose, ComposeAllMatchesSecondOrderWaitingForTwo) {
  // With <= 2 other actors, Eq. 7 equals the second-order waiting time
  // (that is exactly how Section 4.2 derives it).
  const std::vector<ActorLoad> loads{make_load(100.0, 1.0 / 3.0),
                                     make_load(50.0, 1.0 / 3.0)};
  EXPECT_NEAR(compose_all(loads).weighted_blocking,
              waiting_time_second_order(loads), 1e-12);
}

TEST(Decompose, ProbabilityRoundTrip) {
  const double pa = 0.35, pb = 0.6;
  const double pab = compose_probability(pa, pb);
  EXPECT_NEAR(decompose_probability(pab, pb), pa, 1e-12);
  EXPECT_NEAR(decompose_probability(pab, pa), pb, 1e-12);
}

TEST(Decompose, SaturatedProbabilityThrows) {
  EXPECT_THROW((void)decompose_probability(1.0, 1.0), std::domain_error);
  const Composite saturated{1.0, 10.0};
  const Composite total{1.0, 20.0};
  EXPECT_FALSE(can_invert(saturated));
  EXPECT_THROW((void)decompose(total, saturated), std::domain_error);
}

TEST(Decompose, FullRoundTrip) {
  const Composite rest{0.55, 12.5};
  const Composite b = to_composite(make_load(70.0, 0.3));
  const Composite total = compose(rest, b);
  const Composite recovered = decompose(total, b);
  EXPECT_NEAR(recovered.probability, rest.probability, 1e-12);
  EXPECT_NEAR(recovered.weighted_blocking, rest.weighted_blocking, 1e-12);
}

// Property sweeps over random load sets.
class ComposeProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<ActorLoad> random_loads(util::Rng& rng, std::size_t min_n = 1,
                                      std::size_t max_n = 10) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(min_n), static_cast<std::int64_t>(max_n)));
    std::vector<ActorLoad> loads;
    for (std::size_t i = 0; i < n; ++i) {
      loads.push_back(make_load(rng.uniform_real(1.0, 100.0),
                                rng.uniform_real(0.01, 0.9)));
    }
    return loads;
  }
};

TEST_P(ComposeProperty, ProbabilityIsUnionOfIndependentEvents) {
  // P(fold) must equal 1 - prod(1 - P_i): the probability that at least one
  // independent actor blocks.
  util::Rng rng(GetParam());
  const auto loads = random_loads(rng);
  const Composite all = compose_all(loads);
  double complement = 1.0;
  for (const auto& l : loads) complement *= 1.0 - l.probability;
  EXPECT_NEAR(all.probability, 1.0 - complement, 1e-10) << "seed=" << GetParam();
}

TEST_P(ComposeProperty, DecomposeInvertsComposeExactly) {
  // Removing the most recently folded element is an exact inverse.
  util::Rng rng(GetParam() + 500);
  auto loads = random_loads(rng, 2, 10);
  const Composite without_last =
      compose_all(std::span<const ActorLoad>(loads.data(), loads.size() - 1));
  const Composite with_last = compose_all(loads);
  const Composite recovered = decompose(with_last, to_composite(loads.back()));
  EXPECT_NEAR(recovered.probability, without_last.probability, 1e-9);
  EXPECT_NEAR(recovered.weighted_blocking, without_last.weighted_blocking, 1e-9);
}

TEST_P(ComposeProperty, FoldOrderIndependenceWithinSecondOrder) {
  // Different fold orders agree up to third-order terms; with moderate
  // probabilities the relative discrepancy stays small.
  util::Rng rng(GetParam() + 1500);
  auto loads = random_loads(rng, 2, 8);
  for (auto& l : loads) l.probability = std::min(l.probability, 0.4);
  const Composite forward = compose_all(loads);
  std::vector<ActorLoad> reversed(loads.rbegin(), loads.rend());
  const Composite backward = compose_all(reversed);
  EXPECT_NEAR(forward.probability, backward.probability, 1e-10);
  EXPECT_NEAR(forward.weighted_blocking, backward.weighted_blocking,
              0.15 * std::max(1.0, forward.weighted_blocking))
      << "seed=" << GetParam();
}

TEST_P(ComposeProperty, CompositeWaitingCloseToSecondOrderFormula) {
  // The composability estimate tracks the second-order approximation (the
  // paper observes they nearly coincide in Fig. 6).
  util::Rng rng(GetParam() + 2500);
  auto loads = random_loads(rng, 1, 6);
  for (auto& l : loads) l.probability = std::min(l.probability, 0.35);
  const double composed = compose_all(loads).weighted_blocking;
  const double second = waiting_time_second_order(loads);
  EXPECT_NEAR(composed, second, 0.25 * std::max(1.0, second))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComposeProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace procon::prob
