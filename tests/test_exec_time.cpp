#include "sdf/exec_time.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace procon::sdf {
namespace {

TEST(ExecTime, ConstantMoments) {
  const auto d = ExecTimeDistribution::constant(100);
  EXPECT_DOUBLE_EQ(d.mean(), 100.0);
  EXPECT_DOUBLE_EQ(d.second_moment(), 10000.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  // Residual life of a constant service is tau/2 - Definition 5.
  EXPECT_DOUBLE_EQ(d.mean_residual(), 50.0);
  EXPECT_TRUE(d.is_constant());
}

TEST(ExecTime, ConstantSamplesItself) {
  const auto d = ExecTimeDistribution::constant(42);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(d.sample(rng), 42);
  }
}

TEST(ExecTime, UniformMoments) {
  // Uniform over {10, 11, ..., 20}: mean 15.
  const auto d = ExecTimeDistribution::uniform(10, 20);
  EXPECT_DOUBLE_EQ(d.mean(), 15.0);
  EXPECT_FALSE(d.is_constant());
  // Discrete uniform variance: (n^2 - 1) / 12 with n = 11.
  EXPECT_NEAR(d.variance(), (11.0 * 11.0 - 1.0) / 12.0, 1e-9);
  // Residual life exceeds mean/2 whenever variance > 0.
  EXPECT_GT(d.mean_residual(), d.mean() / 2.0);
}

TEST(ExecTime, UniformSamplesInRange) {
  const auto d = ExecTimeDistribution::uniform(5, 9);
  util::Rng rng(7);
  std::vector<int> seen(15, 0);
  for (int i = 0; i < 5000; ++i) {
    const Time v = d.sample(rng);
    ASSERT_GE(v, 5);
    ASSERT_LE(v, 9);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (Time v = 5; v <= 9; ++v) {
    EXPECT_GT(seen[static_cast<std::size_t>(v)], 0) << "value " << v << " never drawn";
  }
}

TEST(ExecTime, DiscreteWeightsNormalised) {
  const auto d = ExecTimeDistribution::discrete(
      {{10, 3.0}, {30, 1.0}});  // P(10) = 3/4, P(30) = 1/4
  EXPECT_DOUBLE_EQ(d.mean(), 0.75 * 10 + 0.25 * 30);
  EXPECT_DOUBLE_EQ(d.second_moment(), 0.75 * 100 + 0.25 * 900);
}

TEST(ExecTime, DiscreteSamplingFrequencies) {
  const auto d = ExecTimeDistribution::discrete({{1, 0.9}, {100, 0.1}});
  util::Rng rng(11);
  int big = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (d.sample(rng) == 100) ++big;
  }
  EXPECT_NEAR(static_cast<double>(big) / kDraws, 0.1, 0.01);
}

TEST(ExecTime, InvalidInputsThrow) {
  EXPECT_THROW(ExecTimeDistribution::uniform(5, 4), std::invalid_argument);
  EXPECT_THROW(ExecTimeDistribution::discrete({}), std::invalid_argument);
  EXPECT_THROW(ExecTimeDistribution::discrete({{-1, 1.0}}), std::invalid_argument);
  EXPECT_THROW(ExecTimeDistribution::discrete({{1, 0.0}}), std::invalid_argument);
  EXPECT_THROW(ExecTimeDistribution::discrete({{1, -2.0}}), std::invalid_argument);
}

TEST(ExecTime, ZeroMeanResidualIsZero) {
  const auto d = ExecTimeDistribution::constant(0);
  EXPECT_DOUBLE_EQ(d.mean_residual(), 0.0);
}

TEST(ExecTime, ConstantModelMatchesGraph) {
  const Graph g = procon::testing::fig2_graph_a();
  const ExecTimeModel model = constant_model(g);
  ASSERT_EQ(model.size(), g.actor_count());
  for (ActorId a = 0; a < g.actor_count(); ++a) {
    EXPECT_TRUE(model[a].is_constant());
    EXPECT_DOUBLE_EQ(model[a].mean(), static_cast<double>(g.actor(a).exec_time));
  }
}

TEST(ExecTime, ResidualLifeFormula) {
  // Two-point distribution {10 w.p. 1/2, 30 w.p. 1/2}: E=20, E^2=500,
  // residual = 500 / 40 = 12.5 > E/2 = 10.
  const auto d = ExecTimeDistribution::discrete({{10, 1.0}, {30, 1.0}});
  EXPECT_DOUBLE_EQ(d.mean_residual(), 12.5);
}

}  // namespace
}  // namespace procon::sdf
