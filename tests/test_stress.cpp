// Stress and cross-module consistency tests: randomised admission
// controller workouts against ground truth, serialisation round-trips on
// generated graphs, and end-to-end sanity of arbitration variants.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "admission/admission.h"
#include "analysis/throughput.h"
#include "gen/graph_generator.h"
#include "helpers.h"
#include "prob/compose.h"
#include "prob/estimator.h"
#include "sdf/io.h"
#include "sim/simulator.h"

namespace procon {
namespace {

// ---------------------------------------------------------------------------
// Admission controller under a random admit/remove sequence: after every
// operation the per-node composites must match a from-scratch rebuild over
// the currently active applications (within floating-point tolerance; the
// controller uses the exact inverse of its own fold order only when the
// removal order is LIFO, so interleaved removals accumulate only the
// second-order association error).
class AdmissionStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdmissionStress, CompositesMatchRebuild) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = 5;
  constexpr std::size_t kNodes = 4;
  admission::AdmissionController ctrl(platform::Platform::homogeneous(kNodes));

  struct Live {
    admission::AppHandle handle;
    sdf::Graph graph;
    std::vector<platform::NodeId> nodes;
    double isolation = 0.0;
  };
  std::vector<Live> live;
  // Running peak of each node's true combined waiting time: the residue
  // left by non-LIFO removals scales with the load that passed through.
  std::vector<double> peak(kNodes, 0.0);

  for (int op = 0; op < 40; ++op) {
    const bool remove = !live.empty() && rng.bernoulli(0.4);
    if (remove) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ctrl.remove(live[idx].handle);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      Live rec;
      rec.graph = gen::generate_graph(rng, gopts, "app" + std::to_string(op));
      rec.nodes.resize(rec.graph.actor_count());
      for (sdf::ActorId a = 0; a < rec.graph.actor_count(); ++a) {
        rec.nodes[a] = static_cast<platform::NodeId>(
            rng.uniform_int(0, kNodes - 1));
      }
      const auto d =
          ctrl.request(rec.graph, rec.nodes, admission::QoS::no_requirement());
      ASSERT_TRUE(d.admitted);
      rec.handle = *d.handle;
      rec.isolation = analysis::compute_period(rec.graph).period;
      live.push_back(std::move(rec));
    }

    EXPECT_EQ(ctrl.admitted_count(), live.size());

    // Ground truth: rebuild node composites from the active set.
    std::vector<prob::Composite> truth(kNodes, prob::Composite::identity());
    for (const Live& rec : live) {
      const auto q = sdf::compute_repetition_vector(rec.graph);
      const auto loads = prob::derive_loads(rec.graph, *q, rec.isolation);
      for (sdf::ActorId a = 0; a < rec.graph.actor_count(); ++a) {
        truth[rec.nodes[a]] =
            prob::compose(truth[rec.nodes[a]], prob::to_composite(loads[a]));
      }
    }
    for (platform::NodeId n = 0; n < kNodes; ++n) {
      const prob::Composite got = ctrl.node_load(n);
      // (+) has an exact inverse: probabilities must match tightly no
      // matter the removal order.
      EXPECT_NEAR(got.probability, truth[n].probability, 1e-6)
          << "op=" << op << " node=" << n << " seed=" << GetParam();
      // (x) is associative only to second order: non-LIFO removals leave
      // third-order residue (the paper's documented approximation). The
      // drift is bounded by a fraction of the current value plus a
      // fraction of the historical peak load that passed through the node.
      peak[n] = std::max(peak[n], truth[n].weighted_blocking);
      EXPECT_NEAR(got.weighted_blocking, truth[n].weighted_blocking,
                  0.15 * std::abs(truth[n].weighted_blocking) + 0.10 * peak[n] + 0.5)
          << "op=" << op << " node=" << n << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissionStress, ::testing::Values(10, 20, 30));

// ---------------------------------------------------------------------------
// Serialisation round trip on generated graphs: structure and analysis
// results must survive write -> parse exactly.
class IoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTrip, GeneratedGraphsSurvive) {
  util::Rng rng(GetParam());
  const sdf::Graph g = gen::generate_graph(rng, gen::GeneratorOptions{}, "g");
  const sdf::Graph back = sdf::graph_from_text(sdf::to_text(g));
  ASSERT_EQ(back.actor_count(), g.actor_count());
  ASSERT_EQ(back.channel_count(), g.channel_count());
  for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
    EXPECT_EQ(back.channel(c).src, g.channel(c).src);
    EXPECT_EQ(back.channel(c).dst, g.channel(c).dst);
    EXPECT_EQ(back.channel(c).prod_rate, g.channel(c).prod_rate);
    EXPECT_EQ(back.channel(c).cons_rate, g.channel(c).cons_rate);
    EXPECT_EQ(back.channel(c).initial_tokens, g.channel(c).initial_tokens);
  }
  EXPECT_EQ(analysis::compute_period_exact(back),
            analysis::compute_period_exact(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTrip, ::testing::Range<std::uint64_t>(0, 10));

// ---------------------------------------------------------------------------
// Arbitration sanity on random workloads: every policy converges and no
// policy beats the isolation period.
class ArbitrationSanity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArbitrationSanity, AllPoliciesRespectIsolationBound) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 6;
  auto apps = gen::generate_graphs(rng, gopts, 3);
  std::size_t max_actors = 0;
  for (const auto& g : apps) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(apps, plat);
  const platform::System sys(std::move(apps), std::move(plat), std::move(map));

  std::vector<double> iso;
  for (const auto& e : prob::ContentionEstimator().estimate(sys)) {
    iso.push_back(e.isolation_period);
  }

  for (const auto arb : {sim::Arbitration::Fcfs, sim::Arbitration::RoundRobin,
                         sim::Arbitration::Tdma}) {
    sim::SimOptions opts{.horizon = 200'000};
    opts.arbitration = arb;
    const auto r = sim::simulate(sys, opts);
    for (std::size_t i = 0; i < r.apps.size(); ++i) {
      ASSERT_TRUE(r.apps[i].converged)
          << "seed=" << GetParam() << " arb=" << static_cast<int>(arb);
      EXPECT_GE(r.apps[i].average_period, iso[i] * (1.0 - 1e-6))
          << "seed=" << GetParam() << " app=" << i;
      EXPECT_GE(r.apps[i].worst_period, r.apps[i].average_period * (1.0 - 1e-9));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArbitrationSanity, ::testing::Values(5, 15, 25));

}  // namespace
}  // namespace procon
