#include "prob/estimator.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace procon::prob {
namespace {

using procon::testing::fig2_system;

// Section 3.1's worked example, end to end: every method must reproduce the
// paper's numbers because each node hosts exactly one other actor (all
// evaluation schemes coincide for a single blocker).
class PaperExample : public ::testing::TestWithParam<Method> {};

TEST_P(PaperExample, WaitingTimesOfFigure3) {
  const ContentionEstimator est(EstimatorOptions{.method = GetParam()});
  const auto r = est.estimate(fig2_system());
  ASSERT_EQ(r.size(), 2u);
  // twait[a0 a1 a2] = [25/3 50/3 50/3].
  EXPECT_NEAR(r[0].actors[0].waiting_time, 25.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[0].actors[1].waiting_time, 50.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[0].actors[2].waiting_time, 50.0 / 3.0, 1e-9);
  // twait[b0 b1 b2] = [50/3 25/3 50/3].
  EXPECT_NEAR(r[1].actors[0].waiting_time, 50.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[1].actors[1].waiting_time, 25.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[1].actors[2].waiting_time, 50.0 / 3.0, 1e-9);
}

TEST_P(PaperExample, ResponseTimesOfFigure3) {
  const ContentionEstimator est(EstimatorOptions{.method = GetParam()});
  const auto r = est.estimate(fig2_system());
  // Figure 3: A = {108.33, 66.67, 116.67}, B = {66.67, 108.33, 116.67}.
  EXPECT_NEAR(r[0].actors[0].response_time, 100.0 + 25.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[0].actors[1].response_time, 50.0 + 50.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[0].actors[2].response_time, 100.0 + 50.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[1].actors[0].response_time, 50.0 + 50.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[1].actors[1].response_time, 100.0 + 25.0 / 3.0, 1e-9);
  EXPECT_NEAR(r[1].actors[2].response_time, 100.0 + 50.0 / 3.0, 1e-9);
}

TEST_P(PaperExample, EstimatedPeriod359) {
  const ContentionEstimator est(EstimatorOptions{.method = GetParam()});
  const auto r = est.estimate(fig2_system());
  // "The new period of SDFG A and B is computed as 359 time units for
  // both" (358.33 exactly).
  EXPECT_NEAR(r[0].isolation_period, 300.0, 1e-6);
  EXPECT_NEAR(r[1].isolation_period, 300.0, 1e-6);
  EXPECT_NEAR(r[0].estimated_period, 1075.0 / 3.0, 1e-5);
  EXPECT_NEAR(r[1].estimated_period, 1075.0 / 3.0, 1e-5);
  EXPECT_NEAR(r[0].normalised_period(), (1075.0 / 3.0) / 300.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, PaperExample,
    ::testing::Values(Method::Exact, Method::SecondOrder, Method::FourthOrder,
                      Method::Composability, Method::CompositionInverse),
    [](const ::testing::TestParamInfo<Method>& param_info) {
      switch (param_info.param) {
        case Method::Exact: return "Exact";
        case Method::SecondOrder: return "SecondOrder";
        case Method::FourthOrder: return "FourthOrder";
        case Method::MthOrder: return "MthOrder";
        case Method::Composability: return "Composability";
        case Method::CompositionInverse: return "CompositionInverse";
        case Method::MonteCarlo: return "MonteCarlo";
      }
      return "Unknown";
    });

TEST(Estimator, MethodNames) {
  EXPECT_EQ(method_name(Method::SecondOrder), "Probabilistic Second Order");
  EXPECT_EQ(method_name(Method::Composability), "Composability-based");
}

TEST(Estimator, InvalidOptionsThrow) {
  EXPECT_THROW(ContentionEstimator(EstimatorOptions{.order = 0}),
               std::invalid_argument);
  EXPECT_THROW(ContentionEstimator(EstimatorOptions{.iterations = 0}),
               std::invalid_argument);
}

TEST(Estimator, MthOrderMatchesSecondAndFourth) {
  const auto sys = fig2_system();
  const auto second =
      ContentionEstimator(EstimatorOptions{.method = Method::SecondOrder})
          .estimate(sys);
  const auto m2 = ContentionEstimator(
                      EstimatorOptions{.method = Method::MthOrder, .order = 2})
                      .estimate(sys);
  EXPECT_NEAR(second[0].estimated_period, m2[0].estimated_period, 1e-12);
  const auto fourth =
      ContentionEstimator(EstimatorOptions{.method = Method::FourthOrder})
          .estimate(sys);
  const auto m4 = ContentionEstimator(
                      EstimatorOptions{.method = Method::MthOrder, .order = 4})
                      .estimate(sys);
  EXPECT_NEAR(fourth[0].estimated_period, m4[0].estimated_period, 1e-12);
}

TEST(Estimator, SingleApplicationNoContention) {
  // A use-case with one application: no waiting, period = isolation period.
  const auto sys = fig2_system().restrict_to({0});
  const auto r = ContentionEstimator().estimate(sys);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].estimated_period, r[0].isolation_period, 1e-9);
  for (const auto& a : r[0].actors) {
    EXPECT_DOUBLE_EQ(a.waiting_time, 0.0);
  }
}

TEST(Estimator, FixedPointIterationConverges) {
  // Iterating lowers the blocking probabilities (periods grow), so the
  // fixed-point estimate is below the single-pass one but above isolation.
  const auto sys = fig2_system();
  const auto once = ContentionEstimator(EstimatorOptions{.iterations = 1})
                        .estimate(sys);
  const auto many = ContentionEstimator(EstimatorOptions{.iterations = 20})
                        .estimate(sys);
  EXPECT_LE(many[0].estimated_period, once[0].estimated_period + 1e-9);
  EXPECT_GE(many[0].estimated_period, once[0].isolation_period - 1e-9);
  // And it should have converged: one more pass changes nothing measurable.
  const auto more = ContentionEstimator(EstimatorOptions{.iterations = 21})
                        .estimate(sys);
  EXPECT_NEAR(many[0].estimated_period, more[0].estimated_period, 1e-6);
}

TEST(Estimator, InconsistentApplicationThrows) {
  sdf::Graph bad("bad");
  const auto x = bad.add_actor("x", 1);
  const auto y = bad.add_actor("y", 1);
  bad.add_channel(x, y, 2, 1, 0);
  bad.add_channel(y, x, 2, 1, 0);
  std::vector<sdf::Graph> apps{bad};
  platform::Platform plat = platform::Platform::homogeneous(2);
  platform::Mapping m = platform::Mapping::by_index(apps, plat);
  const platform::System sys(std::move(apps), std::move(plat), std::move(m));
  EXPECT_THROW((void)ContentionEstimator().estimate(sys), sdf::GraphError);
}

TEST(Estimator, SharedNodeWithinOneApplication) {
  // Both actors of a two-actor app on one node: they contend with each
  // other in the model even though they belong to the same graph.
  std::vector<sdf::Graph> apps{procon::testing::two_actor_cycle(40, 60)};
  platform::Platform plat = platform::Platform::homogeneous(1);
  platform::Mapping m(apps);
  m.assign(0, 0, 0);
  m.assign(0, 1, 0);
  const platform::System sys(std::move(apps), std::move(plat), std::move(m));
  const auto r = ContentionEstimator().estimate(sys);
  // P(x) = 0.4, P(y) = 0.6; twait(x) = mu_y P_y = 18, twait(y) = 20 * 0.4 = 8.
  EXPECT_NEAR(r[0].actors[0].waiting_time, 30.0 * 0.6, 1e-9);
  EXPECT_NEAR(r[0].actors[1].waiting_time, 20.0 * 0.4, 1e-9);
  EXPECT_NEAR(r[0].estimated_period, 100.0 + 18.0 + 8.0, 1e-6);
}

}  // namespace
}  // namespace procon::prob
