// Tests for the stochastic execution-time extension (paper Section 6):
// load derivation with residual-life blocking times, the estimator overload
// and the sampling simulator.
#include <gtest/gtest.h>

#include "helpers.h"
#include "prob/estimator.h"
#include "prob/load.h"
#include "sdf/repetition.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace procon::prob {
namespace {

using procon::testing::fig2_system;
using sdf::ExecTimeDistribution;
using sdf::ExecTimeModel;

std::vector<ExecTimeModel> constant_models(const platform::System& sys) {
  std::vector<ExecTimeModel> models;
  for (const auto& g : sys.apps()) models.push_back(sdf::constant_model(g));
  return models;
}

TEST(StochasticLoads, ConstantModelEqualsDeterministic) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  const auto q = sdf::compute_repetition_vector(g);
  const auto det = derive_loads(g, *q, 300.0);
  const auto sto = derive_loads_stochastic(g, *q, 300.0, sdf::constant_model(g));
  ASSERT_EQ(det.size(), sto.size());
  for (std::size_t i = 0; i < det.size(); ++i) {
    EXPECT_DOUBLE_EQ(det[i].probability, sto[i].probability);
    EXPECT_DOUBLE_EQ(det[i].mean_blocking, sto[i].mean_blocking);
  }
}

TEST(StochasticLoads, VarianceRaisesBlockingTime) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  const auto q = sdf::compute_repetition_vector(g);
  // Same means as the fixed times, but with spread.
  ExecTimeModel model{ExecTimeDistribution::discrete({{50, 1.0}, {150, 1.0}}),
                      ExecTimeDistribution::discrete({{25, 1.0}, {75, 1.0}}),
                      ExecTimeDistribution::constant(100)};
  const auto loads = derive_loads_stochastic(g, *q, 300.0, model);
  // Means unchanged -> same blocking probabilities as Definition 4.
  for (const auto& l : loads) {
    EXPECT_NEAR(l.probability, 1.0 / 3.0, 1e-12);
  }
  // Residual life: E[tau^2]/(2 E[tau]) > tau/2 when variance > 0.
  EXPECT_GT(loads[0].mean_blocking, 50.0);
  EXPECT_GT(loads[1].mean_blocking, 25.0);
  EXPECT_DOUBLE_EQ(loads[2].mean_blocking, 50.0);
}

TEST(StochasticLoads, SizeMismatchThrows) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  const auto q = sdf::compute_repetition_vector(g);
  ExecTimeModel small{ExecTimeDistribution::constant(1)};
  EXPECT_THROW((void)derive_loads_stochastic(g, *q, 300.0, small), sdf::GraphError);
}

TEST(StochasticEstimator, ConstantModelsMatchDeterministicExactly) {
  const auto sys = fig2_system();
  const ContentionEstimator est;
  const auto det = est.estimate(sys);
  const auto sto = est.estimate(sys, constant_models(sys));
  ASSERT_EQ(det.size(), sto.size());
  for (std::size_t i = 0; i < det.size(); ++i) {
    EXPECT_DOUBLE_EQ(det[i].isolation_period, sto[i].isolation_period);
    EXPECT_DOUBLE_EQ(det[i].estimated_period, sto[i].estimated_period);
  }
}

TEST(StochasticEstimator, VarianceIncreasesEstimate) {
  const auto sys = fig2_system();
  const ContentionEstimator est;
  const auto det = est.estimate(sys);

  // Replace every actor's time by a same-mean two-point distribution.
  std::vector<ExecTimeModel> models;
  for (const auto& g : sys.apps()) {
    ExecTimeModel m;
    for (const auto& a : g.actors()) {
      m.push_back(ExecTimeDistribution::discrete(
          {{a.exec_time / 2, 1.0}, {a.exec_time + a.exec_time / 2, 1.0}}));
    }
    models.push_back(std::move(m));
  }
  const auto sto = est.estimate(sys, models);
  for (std::size_t i = 0; i < sto.size(); ++i) {
    // Same means -> same isolation period; larger residuals -> larger
    // contended estimate.
    EXPECT_NEAR(sto[i].isolation_period, det[i].isolation_period, 1e-9);
    EXPECT_GT(sto[i].estimated_period, det[i].estimated_period);
  }
}

TEST(StochasticEstimator, ModelCountMismatchThrows) {
  const auto sys = fig2_system();
  std::vector<ExecTimeModel> one{sdf::constant_model(sys.app(0))};
  EXPECT_THROW((void)ContentionEstimator().estimate(sys, one), sdf::GraphError);
}

TEST(StochasticSim, ConstantModelsReproduceDeterministicRun) {
  const auto sys = fig2_system();
  const auto models = constant_models(sys);
  sim::SimOptions with_models{.horizon = 50'000};
  with_models.exec_models = models;
  const auto a = sim::simulate(sys, with_models);
  const auto b = sim::simulate(sys, sim::SimOptions{.horizon = 50'000});
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].iteration_times, b.apps[i].iteration_times);
  }
}

TEST(StochasticSim, SameSeedSameRun) {
  const auto sys = fig2_system();
  std::vector<ExecTimeModel> models;
  for (const auto& g : sys.apps()) {
    ExecTimeModel m;
    for (const auto& a : g.actors()) {
      m.push_back(ExecTimeDistribution::uniform(a.exec_time / 2,
                                                a.exec_time + a.exec_time / 2));
    }
    models.push_back(std::move(m));
  }
  sim::SimOptions opts{.horizon = 50'000};
  opts.exec_models = models;
  opts.sample_seed = 1234;
  const auto a = sim::simulate(sys, opts);
  const auto b = sim::simulate(sys, opts);
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].iteration_times, b.apps[i].iteration_times);
  }
  // A different seed yields a different execution.
  opts.sample_seed = 99;
  const auto c = sim::simulate(sys, opts);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    any_diff = any_diff || a.apps[i].iteration_times != c.apps[i].iteration_times;
  }
  EXPECT_TRUE(any_diff);
}

TEST(StochasticSim, MeanPeriodNearMeanBasedAnalysis) {
  // Single application with variable times on dedicated nodes: the average
  // period under sampling should sit near the mean-based analytic period
  // (exact for a sequential cycle, where the period is a sum of times).
  const auto sys = fig2_system().restrict_to({0});
  std::vector<ExecTimeModel> models;
  {
    ExecTimeModel m;
    for (const auto& a : sys.app(0).actors()) {
      m.push_back(ExecTimeDistribution::uniform(a.exec_time - 10,
                                                a.exec_time + 10));
    }
    models.push_back(std::move(m));
  }
  sim::SimOptions opts{.horizon = 500'000};
  opts.exec_models = models;
  const auto r = sim::simulate(sys, opts);
  ASSERT_TRUE(r.apps[0].converged);
  EXPECT_NEAR(r.apps[0].average_period, 300.0, 3.0);  // ~1% tolerance
  // Jitter must show up in the worst observed period.
  EXPECT_GT(r.apps[0].worst_period, r.apps[0].average_period);
}

TEST(StochasticSim, ModelMismatchThrows) {
  const auto sys = fig2_system();
  std::vector<ExecTimeModel> bad{sdf::constant_model(sys.app(0))};  // one model
  sim::SimOptions opts{.horizon = 1000};
  opts.exec_models = bad;
  EXPECT_THROW((void)sim::simulate(sys, opts), sdf::GraphError);
}

TEST(StochasticEndToEnd, EstimateTracksStochasticSimulation) {
  // Full pipeline under contention with spread execution times: the
  // stochastic estimate stays within a loose band of the sampling
  // simulation (the paper's accuracy claim carried to the extension).
  const auto sys = fig2_system();
  std::vector<ExecTimeModel> models;
  for (const auto& g : sys.apps()) {
    ExecTimeModel m;
    for (const auto& a : g.actors()) {
      m.push_back(ExecTimeDistribution::uniform(a.exec_time - a.exec_time / 5,
                                                a.exec_time + a.exec_time / 5));
    }
    models.push_back(std::move(m));
  }
  const auto est = ContentionEstimator().estimate(sys, models);
  sim::SimOptions opts{.horizon = 500'000};
  opts.exec_models = models;
  const auto sim = sim::simulate(sys, opts);
  for (std::size_t i = 0; i < est.size(); ++i) {
    ASSERT_TRUE(sim.apps[i].converged);
    EXPECT_LT(util::percent_abs_diff(est[i].estimated_period,
                                     sim.apps[i].average_period),
              30.0)
        << "app " << i;
  }
}

}  // namespace
}  // namespace procon::prob
