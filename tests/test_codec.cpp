#include "net/codec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <exception>
#include <span>
#include <string>
#include <typeinfo>
#include <vector>

#include "api/workbench.h"
#include "helpers.h"
#include "util/rng.h"

namespace procon::net {
namespace {

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    char tmp[3];
    std::snprintf(tmp, sizeof tmp, "%02x", b);
    out += tmp;
  }
  return out;
}

TEST(Codec, PrimitivesRoundTripLittleEndian) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-0.1);  // not exactly representable: bitwise is the only equality
  w.str("procon");
  WireReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -0.1);
  EXPECT_EQ(r.str(), "procon");
  r.expect_end();
}

TEST(Codec, ReaderThrowsOnTruncationAndTrailingBytes) {
  WireWriter w;
  w.u32(7);
  {
    WireReader r(w.view());
    (void)r.u16();
    EXPECT_THROW((void)r.u32(), CodecError);  // only 2 bytes left
  }
  {
    WireReader r(w.view());
    (void)r.u16();
    EXPECT_THROW(r.expect_end(), CodecError);
  }
  {
    // A string length prefix larger than the buffer must not allocate.
    WireWriter bad;
    bad.u32(0xFFFFFFFFu);
    WireReader r(bad.view());
    EXPECT_THROW((void)r.str(), CodecError);
  }
}

TEST(Codec, GraphRoundTrip) {
  const sdf::Graph g = procon::testing::fig2_graph_a();
  WireWriter w;
  encode_graph(w, g);
  WireReader r(w.view());
  const sdf::Graph g2 = decode_graph(r);
  r.expect_end();
  EXPECT_EQ(g2.name(), g.name());
  ASSERT_EQ(g2.actor_count(), g.actor_count());
  ASSERT_EQ(g2.channel_count(), g.channel_count());
  for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
    EXPECT_EQ(g2.actor(a).name, g.actor(a).name);
    EXPECT_EQ(g2.actor(a).exec_time, g.actor(a).exec_time);
  }
  for (sdf::ChannelId c = 0; c < g.channel_count(); ++c) {
    EXPECT_EQ(g2.channel(c).src, g.channel(c).src);
    EXPECT_EQ(g2.channel(c).dst, g.channel(c).dst);
    EXPECT_EQ(g2.channel(c).prod_rate, g.channel(c).prod_rate);
    EXPECT_EQ(g2.channel(c).cons_rate, g.channel(c).cons_rate);
    EXPECT_EQ(g2.channel(c).initial_tokens, g.channel(c).initial_tokens);
  }
}

TEST(Codec, GraphEncodingIsGoldenStable) {
  // Pins the wire bytes of a tiny fixed graph. If this test breaks, the
  // encoding changed: bump kProtocolVersion and regenerate the constant.
  sdf::Graph g("gg");
  const auto x = g.add_actor("x", 3);
  const auto y = g.add_actor("y", 5);
  g.add_channel(x, y, 1, 2, 0);
  g.add_channel(y, x, 2, 1, 4);
  WireWriter w;
  encode_graph(w, g);
  EXPECT_EQ(to_hex(w.view()),
            "02000000"                  // name length
            "6767"                      // "gg"
            "02000000"                  // actor count
            "01000000" "78" "0300000000000000"   // "x", tau=3
            "01000000" "79" "0500000000000000"   // "y", tau=5
            "02000000"                  // channel count
            "00000000" "01000000" "01000000" "02000000"
            "0000000000000000"          // x->y 1/2, 0 tokens
            "01000000" "00000000" "02000000" "01000000"
            "0400000000000000");        // y->x 2/1, 4 tokens
}

TEST(Codec, ExecModelRoundTripBitwise) {
  sdf::ExecTimeModel model;
  model.push_back(sdf::ExecTimeDistribution::uniform(2, 9));
  model.push_back(sdf::ExecTimeDistribution::discrete(
      {{1, 0.1}, {4, 0.6}, {9, 0.3}}));
  model.push_back(sdf::ExecTimeDistribution::constant(7));
  WireWriter w;
  encode_exec_model(w, model);
  WireReader r(w.view());
  const sdf::ExecTimeModel back = decode_exec_model(r);
  r.expect_end();
  ASSERT_EQ(back.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(back[i].outcomes().size(), model[i].outcomes().size());
    for (std::size_t k = 0; k < model[i].outcomes().size(); ++k) {
      EXPECT_EQ(back[i].outcomes()[k].value, model[i].outcomes()[k].value);
      EXPECT_EQ(back[i].outcomes()[k].weight, model[i].outcomes()[k].weight);
    }
    EXPECT_EQ(back[i].mean(), model[i].mean());
    EXPECT_EQ(back[i].second_moment(), model[i].second_moment());
  }
}

TEST(Codec, SystemRoundTripPreservesFingerprint) {
  const platform::System sys = procon::testing::fig2_system();
  WireWriter w;
  encode_system(w, sys);
  WireReader r(w.view());
  const platform::System back = decode_system(r);
  r.expect_end();
  // The fingerprint keys shard routing AND session sharing: a decoded
  // tenant must hash exactly like the original or the cluster falls apart.
  EXPECT_EQ(back.fingerprint(), sys.fingerprint());
  EXPECT_EQ(back.app_count(), sys.app_count());
  // Re-encoding the decoded system reproduces the bytes (stability).
  WireWriter w2;
  encode_system(w2, back);
  ASSERT_EQ(w2.size(), w.size());
  EXPECT_TRUE(std::equal(w.view().begin(), w.view().end(), w2.view().begin()));
}

TEST(Codec, QueryDescRoundTripAllKinds) {
  for (int kind = 0; kind < 8; ++kind) {
    api::QueryDesc d;
    d.kind = static_cast<api::QueryKind>(kind);
    d.app = 1;
    d.use_case = {0, 2};
    d.estimator.order = 4;
    d.estimator.iterations = 17;
    d.wcrt.tdma_slot = 12;
    d.sim.horizon = 12345;
    d.sim.warmup_fraction = 0.375;
    d.sim.sample_seed = 99;
    d.sim.exec_models.push_back(
        {sdf::ExecTimeDistribution::uniform(1, 6)});
    d.buffers.max_steps = 77;
    // Racing options travel with BufferFrontier descriptors (v2): set every
    // field off its default.
    d.buffers.racer.enabled = true;
    d.buffers.racer.estimator_pulls = 3;
    d.buffers.racer.sim_pulls = 1;
    d.buffers.racer.sim_horizon = 7'500;
    d.buffers.racer.confidence = 1.75;
    d.buffers.racer.rel_slack = 0.0625;
    d.buffers.racer.max_survivors = 4;
    d.buffers.racer.budget = 96;
    d.buffers.racer.batch = 5;
    d.buffers.racer.resync_every = 9;
    d.buffers.racer.staleness_slack = 0.03125;
    d.buffers.racer.seed = 0xDEADBEEFu;
    // Candidate topologies travel with TopologySweep descriptors (v3).
    d.topologies.push_back(platform::Topology::ring(4, 2, 3));
    d.topologies.push_back(platform::Topology::mesh(2, 3, 1, 2));
    d.topo_with_sim = false;
    WireWriter w;
    encode_query_desc(w, d);
    WireReader r(w.view());
    const api::QueryDesc back = decode_query_desc(r);
    r.expect_end();
    EXPECT_EQ(back.kind, d.kind);
    EXPECT_EQ(back.app, d.app);
    EXPECT_EQ(back.use_case, d.use_case);
    EXPECT_EQ(back.estimator.order, d.estimator.order);
    EXPECT_EQ(back.estimator.iterations, d.estimator.iterations);
    EXPECT_EQ(back.wcrt.tdma_slot, d.wcrt.tdma_slot);
    EXPECT_EQ(back.sim.horizon, d.sim.horizon);
    EXPECT_EQ(back.sim.warmup_fraction, d.sim.warmup_fraction);
    EXPECT_EQ(back.sim.sample_seed, d.sim.sample_seed);
    ASSERT_EQ(back.sim.exec_models.size(), 1u);
    EXPECT_EQ(back.buffers.max_steps, d.buffers.max_steps);
    EXPECT_EQ(back.buffers.racer.enabled, d.buffers.racer.enabled);
    EXPECT_EQ(back.buffers.racer.estimator_pulls, d.buffers.racer.estimator_pulls);
    EXPECT_EQ(back.buffers.racer.sim_pulls, d.buffers.racer.sim_pulls);
    EXPECT_EQ(back.buffers.racer.sim_horizon, d.buffers.racer.sim_horizon);
    EXPECT_EQ(back.buffers.racer.confidence, d.buffers.racer.confidence);
    EXPECT_EQ(back.buffers.racer.rel_slack, d.buffers.racer.rel_slack);
    EXPECT_EQ(back.buffers.racer.max_survivors, d.buffers.racer.max_survivors);
    EXPECT_EQ(back.buffers.racer.budget, d.buffers.racer.budget);
    EXPECT_EQ(back.buffers.racer.batch, d.buffers.racer.batch);
    EXPECT_EQ(back.buffers.racer.resync_every, d.buffers.racer.resync_every);
    EXPECT_EQ(back.buffers.racer.staleness_slack, d.buffers.racer.staleness_slack);
    EXPECT_EQ(back.buffers.racer.seed, d.buffers.racer.seed);
    ASSERT_EQ(back.topologies.size(), d.topologies.size());
    for (std::size_t t = 0; t < d.topologies.size(); ++t) {
      EXPECT_TRUE(back.topologies[t] == d.topologies[t]);
    }
    EXPECT_EQ(back.topo_with_sim, d.topo_with_sim);
  }
}

TEST(Codec, FrontierResultRoundTripCarriesRacerStats) {
  // A BufferFrontier result (v2): points plus the racing statistics.
  api::QueryValue v;
  api::Report<dse::FrontierResult> report;
  report.provenance.method = "greedy frontier (raced candidates)";
  report.provenance.evaluations = 12;
  dse::FrontierResult fr;
  fr.points.push_back({{2, 2, 3}, 7, 300.0});
  fr.points.push_back({{2, 3, 3}, 8, 250.5});
  fr.racer.races = 6;
  fr.racer.arms = 18;
  fr.racer.pruned_similar = 1;
  fr.racer.estimator_pulls = 30;
  fr.racer.sim_pulls = 4;
  fr.racer.full_evals = 9;
  fr.racer.eliminated = 8;
  fr.racer.exhaustive_evals = 54;
  fr.racer.rounds = 11;
  for (std::size_t r = 0; r < dse::RacerStats::kMaxRounds; ++r) {
    fr.racer.eliminated_per_round[r] = 100 + r;
  }
  fr.evaluations = 77;
  report.value = fr;
  v = std::move(report);
  WireWriter w;
  encode_query_value(w, v);
  WireReader r(w.view());
  const api::QueryValue back = decode_query_value(r);
  r.expect_end();
  const auto* decoded = std::get_if<api::Report<dse::FrontierResult>>(&back);
  ASSERT_NE(decoded, nullptr);
  ASSERT_EQ(decoded->value.points.size(), fr.points.size());
  for (std::size_t k = 0; k < fr.points.size(); ++k) {
    EXPECT_EQ(decoded->value.points[k].capacities, fr.points[k].capacities);
    EXPECT_EQ(decoded->value.points[k].total_tokens, fr.points[k].total_tokens);
    EXPECT_EQ(decoded->value.points[k].period, fr.points[k].period);  // bitwise
  }
  const dse::RacerStats& s = decoded->value.racer;
  EXPECT_EQ(s.races, fr.racer.races);
  EXPECT_EQ(s.arms, fr.racer.arms);
  EXPECT_EQ(s.pruned_similar, fr.racer.pruned_similar);
  EXPECT_EQ(s.estimator_pulls, fr.racer.estimator_pulls);
  EXPECT_EQ(s.sim_pulls, fr.racer.sim_pulls);
  EXPECT_EQ(s.full_evals, fr.racer.full_evals);
  EXPECT_EQ(s.eliminated, fr.racer.eliminated);
  EXPECT_EQ(s.exhaustive_evals, fr.racer.exhaustive_evals);
  EXPECT_EQ(s.rounds, fr.racer.rounds);
  for (std::size_t k = 0; k < dse::RacerStats::kMaxRounds; ++k) {
    EXPECT_EQ(s.eliminated_per_round[k], fr.racer.eliminated_per_round[k]);
  }
  EXPECT_EQ(decoded->value.evaluations, fr.evaluations);
  // Re-encoding reproduces the bytes (golden stability).
  WireWriter w2;
  encode_query_value(w2, back);
  ASSERT_EQ(w2.size(), w.size());
  EXPECT_TRUE(std::equal(w.view().begin(), w.view().end(), w2.view().begin()));
}

TEST(Codec, QueryDescRejectsOutOfRangeEnum) {
  api::QueryDesc d;
  WireWriter w;
  encode_query_desc(w, d);
  std::vector<std::uint8_t> bytes(w.view().begin(), w.view().end());
  bytes[0] = 200;  // kind is the first byte; 200 is no QueryKind
  WireReader r(bytes);
  EXPECT_THROW((void)decode_query_desc(r), CodecError);
}

TEST(Codec, QueryValueRoundTripBitwise) {
  // Real results from a real Workbench: every variant alternative the
  // service can produce must survive the wire bitwise.
  api::Workbench wb(procon::testing::fig2_system(),
                    api::WorkbenchOptions{.threads = 1});
  std::vector<api::QueryValue> values;
  values.emplace_back(wb.throughput(0));
  values.emplace_back(wb.latency(0));
  values.emplace_back(wb.bottleneck(0));
  values.emplace_back(wb.contention());
  values.emplace_back(wb.wcrt());
  for (const api::QueryValue& v : values) {
    WireWriter w;
    encode_query_value(w, v);
    WireReader r(w.view());
    const api::QueryValue back = decode_query_value(r);
    r.expect_end();
    EXPECT_EQ(back.index(), v.index());
    // Bitwise identity via the payload bytes (provenance excluded there,
    // but this decode carried provenance through as well).
    WireWriter pa;
    WireWriter pb;
    encode_query_payload(pa, v);
    encode_query_payload(pb, back);
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_TRUE(
        std::equal(pa.view().begin(), pa.view().end(), pb.view().begin()));
    // Full re-encode (with provenance) is byte-stable too.
    WireWriter w2;
    encode_query_value(w2, back);
    ASSERT_EQ(w2.size(), w.size());
    EXPECT_TRUE(
        std::equal(w.view().begin(), w.view().end(), w2.view().begin()));
  }
}

TEST(Codec, StatsRoundTrip) {
  WireStats s;
  s.service.submitted = 10;
  s.service.coalesced = 2;
  s.service.result_hits = 3;
  s.service.executed = 5;
  s.service.sessions_built = 4;
  s.service.sessions_evicted = 1;
  s.table.hits = 100;
  s.table.misses = 50;
  s.table.stores = 49;
  s.table.evictions = 7;
  s.table.verify_failures = 0;
  s.table.shards.push_back({60, 30, 29, 4, 0});
  s.table.shards.push_back({40, 20, 20, 3, 0});
  WireWriter w;
  encode_stats(w, s);
  WireReader r(w.view());
  const WireStats back = decode_stats(r);
  r.expect_end();
  EXPECT_EQ(back.service.submitted, s.service.submitted);
  EXPECT_EQ(back.service.coalesced, s.service.coalesced);
  EXPECT_EQ(back.service.result_hits, s.service.result_hits);
  EXPECT_EQ(back.service.executed, s.service.executed);
  EXPECT_EQ(back.table.hits, s.table.hits);
  ASSERT_EQ(back.table.shards.size(), 2u);
  EXPECT_EQ(back.table.shards[1].hits, 40u);
}

TEST(Codec, FramingHandlesPartialDelivery) {
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  append_frame(wire, FrameType::Query, 42, payload);
  append_frame(wire, FrameType::StatsRequest, 43, {});

  // Feed the stream one byte at a time: frames must pop out exactly when
  // complete, never early.
  std::vector<std::uint8_t> rx;
  std::vector<Frame> got;
  for (const std::uint8_t b : wire) {
    rx.push_back(b);
    while (auto f = try_extract_frame(rx)) got.push_back(*std::move(f));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, FrameType::Query);
  EXPECT_EQ(got[0].request_id, 42u);
  EXPECT_EQ(got[0].payload, payload);
  EXPECT_EQ(got[1].type, FrameType::StatsRequest);
  EXPECT_EQ(got[1].request_id, 43u);
  EXPECT_TRUE(got[1].payload.empty());
  EXPECT_TRUE(rx.empty());
}

TEST(Codec, FramingRejectsHostileLengthPrefix) {
  // A length prefix beyond kMaxFramePayload must throw instead of waiting
  // for (or allocating) a gigabyte.
  std::vector<std::uint8_t> rx{0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW((void)try_extract_frame(rx), CodecError);
}

// ---------------------------------------------------------------------------
// Fuzz-style decoder robustness: seeded byte mutation over valid frames.
//
// The decoder faces network input; a flipped bit must never crash, over-read
// (the ASan/UBSan CI job runs this test), hang, or allocate unboundedly —
// every failure path is a clean CodecError. Mutants that happen to stay
// well-formed may decode successfully; anything else thrown is a bug.

/// Decodes `bytes` with `decode`, failing the test on any non-CodecError
/// escape. Returns true when the mutant decoded cleanly.
template <typename Decode>
bool expect_clean_decode(std::span<const std::uint8_t> bytes, Decode&& decode,
                         std::uint64_t mutant) {
  try {
    decode(bytes);
    return true;
  } catch (const CodecError&) {
    return false;  // the designed rejection path
  } catch (const std::exception& e) {
    ADD_FAILURE() << "mutant " << mutant << " escaped with "
                  << typeid(e).name() << ": " << e.what();
    return false;
  }
}

/// Applies `flips` random single-byte mutations, then (sometimes) truncates.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& base,
                                 util::Rng& rng) {
  std::vector<std::uint8_t> out = base;
  const int flips = static_cast<int>(rng.uniform_int(1, 8));
  for (int f = 0; f < flips; ++f) {
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
    out[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  if (rng.uniform01() < 0.25) {
    out.resize(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(out.size()))));
  }
  return out;
}

TEST(CodecFuzz, MutatedSystemFramesNeverEscapeCodecError) {
  // A representative routed system: multiple apps, a non-trivial mapping
  // and a v3 topology section, so mutations can land in every decoder arm.
  platform::System sys = testing::fig2_system();
  sys.set_topology(platform::Topology::ring(3, 2, 1));
  WireWriter w;
  encode_system(w, sys);
  const std::vector<std::uint8_t> valid(w.view().begin(), w.view().end());

  util::Rng rng(0xC0DEC);
  std::size_t decoded = 0;
  for (std::uint64_t mutant = 0; mutant < 6'000; ++mutant) {
    const std::vector<std::uint8_t> bytes = mutate(valid, rng);
    decoded += expect_clean_decode(
        bytes,
        [](std::span<const std::uint8_t> b) {
          WireReader r(b);
          (void)decode_system(r);
          r.expect_end();
        },
        mutant);
  }
  // The unmutated frame (and a fraction of benign mutants) must decode; if
  // nothing ever decodes the harness is mutating a stale frame layout.
  WireReader r{std::span<const std::uint8_t>(valid)};
  EXPECT_NO_THROW((void)decode_system(r));
  (void)decoded;
}

TEST(CodecFuzz, MutatedQueryDescFramesNeverEscapeCodecError) {
  api::QueryDesc d;
  d.kind = api::QueryKind::TopologySweep;
  d.use_case = {0, 1};
  d.sim.exec_models.push_back({sdf::ExecTimeDistribution::uniform(1, 6)});
  d.topologies.push_back(platform::Topology::mesh(2, 2, 1, 2));
  d.topologies.push_back(platform::Topology::bus(4));
  WireWriter w;
  encode_query_desc(w, d);
  const std::vector<std::uint8_t> valid(w.view().begin(), w.view().end());

  util::Rng rng(0xFA22);
  for (std::uint64_t mutant = 0; mutant < 6'000; ++mutant) {
    const std::vector<std::uint8_t> bytes = mutate(valid, rng);
    expect_clean_decode(
        bytes,
        [](std::span<const std::uint8_t> b) {
          WireReader r(b);
          (void)decode_query_desc(r);
          r.expect_end();
        },
        mutant);
  }
}

TEST(Codec, HelloHandshake) {
  const auto ok = hello_payload();
  EXPECT_NO_THROW(check_hello(ok));
  auto bad_magic = ok;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(check_hello(bad_magic), CodecError);
  auto bad_version = ok;
  bad_version[4] ^= 0xFF;  // version lives after the u32 magic
  EXPECT_THROW(check_hello(bad_version), CodecError);
}

}  // namespace
}  // namespace procon::net
