#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

namespace procon::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.set_header({"App", "Period"});
  t.add_row({"A", "300"});
  t.add_row({"B", "358.33"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("App"), std::string::npos);
  EXPECT_NE(s.find("358.33"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsRaggedRows) {
  Table t("");
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  const std::string s = t.render();
  // Every rendered line must have the same width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvEscaping) {
  Table t("");
  t.set_header({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(CsvWriter, WritesFile) {
  const std::string path = ::testing::TempDir() + "/procon_test.csv";
  {
    CsvWriter w(path);
    w.write_row({"a", "b"});
    const std::vector<double> vals{1.5, 2.25};
    w.write_numeric_row("row", vals, 2);
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "a,b\nrow,1.50,2.25\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_procon/x.csv"), std::runtime_error);
}

TEST(Log, LevelFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  // Nothing observable to assert on stderr here; exercise the path and the
  // accessor round-trip.
  PROCON_LOG(Info) << "suppressed " << 42;
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

}  // namespace
}  // namespace procon::util
