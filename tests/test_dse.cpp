#include "dse/mapper.h"

#include <gtest/gtest.h>

#include "gen/graph_generator.h"
#include "helpers.h"
#include "sim/simulator.h"

namespace procon::dse {
namespace {

using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;

std::vector<sdf::Graph> two_apps() { return {fig2_graph_a(), fig2_graph_b()}; }

TEST(EvaluateMapping, DisjointMappingScoresOne) {
  const auto apps = two_apps();
  const platform::Platform plat = platform::Platform::homogeneous(6);
  platform::Mapping m(apps);
  for (sdf::ActorId a = 0; a < 3; ++a) {
    m.assign(0, a, a);
    m.assign(1, a, 3 + a);
  }
  EXPECT_NEAR(evaluate_mapping(apps, plat, m), 1.0, 1e-9);
}

TEST(EvaluateMapping, SharedMappingScoresAboveOne) {
  const auto apps = two_apps();
  const platform::Platform plat = platform::Platform::homogeneous(3);
  const platform::Mapping m = platform::Mapping::by_index(apps, plat);
  // Section 3.1: estimated period 358.33 on isolation 300.
  EXPECT_NEAR(evaluate_mapping(apps, plat, m), (1075.0 / 3.0) / 300.0, 1e-6);
}

TEST(Mapper, FindsDisjointMappingWhenRoomExists) {
  // Six nodes for six actors: the optimum separates the two applications
  // completely (score 1); annealing must find it (or something equal).
  const auto apps = two_apps();
  const platform::Platform plat = platform::Platform::homogeneous(6);
  const platform::Mapping start = platform::Mapping::by_index(apps, plat);
  MapperOptions opts;
  opts.iterations = 800;
  opts.seed = 3;
  const MapperResult r = optimise_mapping(apps, plat, start, opts);
  EXPECT_NEAR(r.score, 1.0, 1e-6);
  EXPECT_LE(r.score, r.initial_score + 1e-12);
  EXPECT_TRUE(r.mapping.is_complete());
}

TEST(Mapper, NeverWorseThanStart) {
  const auto apps = two_apps();
  const platform::Platform plat = platform::Platform::homogeneous(3);
  const platform::Mapping start = platform::Mapping::by_index(apps, plat);
  MapperOptions opts;
  opts.iterations = 200;
  const MapperResult r = optimise_mapping(apps, plat, start, opts);
  EXPECT_LE(r.score, r.initial_score + 1e-12);
  EXPECT_GE(r.score, 1.0 - 1e-9);  // cannot beat isolation
}

TEST(Mapper, DeterministicForSeed) {
  const auto apps = two_apps();
  const platform::Platform plat = platform::Platform::homogeneous(4);
  const platform::Mapping start = platform::Mapping::by_index(apps, plat);
  MapperOptions opts;
  opts.iterations = 300;
  opts.seed = 42;
  const MapperResult a = optimise_mapping(apps, plat, start, opts);
  const MapperResult b = optimise_mapping(apps, plat, start, opts);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    for (sdf::ActorId act = 0; act < apps[i].actor_count(); ++act) {
      EXPECT_EQ(a.mapping.node_of(i, act), b.mapping.node_of(i, act));
    }
  }
}

TEST(Mapper, SingleNodePlatformDegenerates) {
  const auto apps = two_apps();
  const platform::Platform plat = platform::Platform::homogeneous(1);
  platform::Mapping m(apps);
  for (sdf::ActorId a = 0; a < 3; ++a) {
    m.assign(0, a, 0);
    m.assign(1, a, 0);
  }
  const MapperResult r = optimise_mapping(apps, plat, m);
  EXPECT_DOUBLE_EQ(r.score, r.initial_score);
  EXPECT_EQ(r.evaluations, 1u);
}

TEST(Mapper, IncompleteStartThrows) {
  const auto apps = two_apps();
  const platform::Platform plat = platform::Platform::homogeneous(3);
  platform::Mapping incomplete(apps);
  EXPECT_THROW((void)optimise_mapping(apps, plat, incomplete, MapperOptions{}),
               std::invalid_argument);
}

TEST(Mapper, CountsEvaluationsAndAcceptances) {
  const auto apps = two_apps();
  const platform::Platform plat = platform::Platform::homogeneous(4);
  const platform::Mapping start = platform::Mapping::by_index(apps, plat);
  MapperOptions opts;
  opts.iterations = 100;
  const MapperResult r = optimise_mapping(apps, plat, start, opts);
  EXPECT_EQ(r.evaluations, 101u);  // start + one per step
  EXPECT_LE(r.accepted_moves, 100u);
}

// Property: on random workloads the optimised mapping's *simulated* worst
// slowdown is no worse than the start mapping's (the analytic score is a
// usable proxy).
class MapperProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperProperty, OptimisedMappingHelpsInSimulation) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 6;
  const auto apps = gen::generate_graphs(rng, gopts, 3);
  const platform::Platform plat = platform::Platform::homogeneous(6);
  const platform::Mapping start = platform::Mapping::by_index(apps, plat);
  MapperOptions opts;
  opts.iterations = 400;
  opts.seed = GetParam();
  const MapperResult r = optimise_mapping(apps, plat, start, opts);
  ASSERT_LE(r.score, r.initial_score + 1e-12);

  auto simulated_worst = [&](const platform::Mapping& m) {
    platform::System sys(std::vector<sdf::Graph>(apps.begin(), apps.end()),
                         plat, m);
    const auto sim = sim::simulate(sys, sim::SimOptions{.horizon = 150'000});
    const auto est = prob::ContentionEstimator().estimate(sys);
    double worst = 0.0;
    for (std::size_t i = 0; i < sim.apps.size(); ++i) {
      worst = std::max(worst, sim.apps[i].average_period / est[i].isolation_period);
    }
    return worst;
  };
  // Allow a little simulation noise; a genuinely better mapping should not
  // be meaningfully slower in simulation.
  EXPECT_LE(simulated_worst(r.mapping), simulated_worst(start) * 1.25)
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace procon::dse
