// api::AnalysisService — the async, multi-tenant front door:
//
//  * multi-client stress: N threads hammering one service with mixed
//    queries over two tenant systems must produce results bitwise
//    identical to a serial Workbench oracle, for any worker count;
//  * coalescing: identical in-flight queries share one execution and one
//    completion state; cancelling one of several attached tickets does
//    not abandon the query;
//  * cancellation: a pending query whose every ticket cancelled never
//    executes and reports Cancelled;
//  * session LRU: eviction under a capacity bound is correctness-neutral
//    (rebuilt sessions answer identically), and bitwise-identical
//    registrations share one live session;
//  * streaming sweeps: service-level sink sweeps match the Workbench
//    vector sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "api/service.h"
#include "gen/graph_generator.h"
#include "gen/use_cases.h"
#include "util/rng.h"

namespace procon {
namespace {

using api::AnalysisService;
using api::QueryDesc;
using api::QueryKind;
using api::QueryTicket;
using api::QueryValue;
using api::ServiceOptions;
using api::SystemId;
using api::TicketStatus;

platform::System random_system(std::uint64_t seed, std::size_t apps) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = 6;
  auto graphs = gen::generate_graphs(rng, gopts, apps);
  std::size_t max_actors = 0;
  for (const auto& g : graphs) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(graphs, plat);
  return platform::System(std::move(graphs), std::move(plat), std::move(map));
}

void expect_same_estimates(const std::vector<prob::AppEstimate>& a,
                           const std::vector<prob::AppEstimate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].isolation_period, b[i].isolation_period);
    EXPECT_EQ(a[i].estimated_period, b[i].estimated_period);
    ASSERT_EQ(a[i].actors.size(), b[i].actors.size());
    for (std::size_t k = 0; k < a[i].actors.size(); ++k) {
      EXPECT_EQ(a[i].actors[k].waiting_time, b[i].actors[k].waiting_time);
      EXPECT_EQ(a[i].actors[k].response_time, b[i].actors[k].response_time);
    }
  }
}

void expect_same_sim(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.node_utilisation, b.node_utilisation);
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].iterations, b.apps[i].iterations);
    EXPECT_EQ(a.apps[i].average_period, b.apps[i].average_period);
    EXPECT_EQ(a.apps[i].worst_period, b.apps[i].worst_period);
    EXPECT_EQ(a.apps[i].iteration_times, b.apps[i].iteration_times);
  }
}

/// The mixed query a stress client submits for slot k of system `sys_apps`.
QueryDesc mixed_query(std::size_t k, std::size_t sys_apps) {
  QueryDesc d;
  switch (k % 4) {
    case 0:
      d.kind = QueryKind::Throughput;
      d.app = static_cast<sdf::AppId>(k % sys_apps);
      break;
    case 1:
      d.kind = QueryKind::Contention;
      break;
    case 2:
      d.kind = QueryKind::Wcrt;
      break;
    default:
      d.kind = QueryKind::Simulate;
      d.sim.horizon = 20'000;
      break;
  }
  return d;
}

TEST(AnalysisService, MultiClientStressMatchesSerialWorkbenchOracle) {
  const platform::System sys_a = random_system(11, 4);
  const platform::System sys_b = random_system(22, 5);

  // Serial oracles, evaluated once up front on plain Workbenches.
  api::Workbench oracle_a(sys_a, api::WorkbenchOptions{.threads = 1});
  api::Workbench oracle_b(sys_b, api::WorkbenchOptions{.threads = 1});
  const auto period_a0 = oracle_a.throughput(0);
  const auto period_b0 = oracle_b.throughput(0);
  const auto est_a = oracle_a.contention();
  const auto est_b = oracle_b.contention();
  const auto wc_a = oracle_a.wcrt();
  const auto wc_b = oracle_b.wcrt();
  const auto sim_a = oracle_a.simulate(sim::SimOptions{.horizon = 20'000});
  const auto sim_b = oracle_b.simulate(sim::SimOptions{.horizon = 20'000});

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    AnalysisService service(
        ServiceOptions{.threads = workers, .session_capacity = 4});
    const SystemId a = service.register_system(sys_a);
    const SystemId b = service.register_system(sys_b);

    constexpr std::size_t kClients = 6;
    constexpr std::size_t kQueries = 24;
    std::vector<std::vector<QueryTicket>> tickets(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t k = 0; k < kQueries; ++k) {
          const bool on_a = (c + k) % 2 == 0;
          tickets[c].push_back(service.submit(
              on_a ? a : b,
              mixed_query(k, on_a ? sys_a.app_count() : sys_b.app_count())));
        }
      });
    }
    for (auto& t : clients) t.join();

    for (std::size_t c = 0; c < kClients; ++c) {
      for (std::size_t k = 0; k < kQueries; ++k) {
        const bool on_a = (c + k) % 2 == 0;
        const QueryValue& v = tickets[c][k].get();
        switch (k % 4) {
          case 0: {
            const auto& r = std::get<api::Report<analysis::PeriodResult>>(v);
            if (k % (on_a ? sys_a.app_count() : sys_b.app_count()) == 0) {
              EXPECT_EQ(r->period, (on_a ? period_a0 : period_b0)->period);
            }
            break;
          }
          case 1: {
            const auto& r =
                std::get<api::Report<std::vector<prob::AppEstimate>>>(v);
            expect_same_estimates(*r, on_a ? *est_a : *est_b);
            break;
          }
          case 2: {
            const auto& r = std::get<api::Report<std::vector<wcrt::AppBound>>>(v);
            const auto& oracle = on_a ? *wc_a : *wc_b;
            ASSERT_EQ(r->size(), oracle.size());
            for (std::size_t i = 0; i < oracle.size(); ++i) {
              EXPECT_EQ((*r)[i].isolation_period, oracle[i].isolation_period);
              EXPECT_EQ((*r)[i].worst_case_period, oracle[i].worst_case_period);
            }
            break;
          }
          default: {
            const auto& r = std::get<api::Report<sim::SimResult>>(v);
            expect_same_sim(*r, on_a ? *sim_a : *sim_b);
            break;
          }
        }
      }
    }

    const auto stats = service.stats();
    EXPECT_EQ(stats.submitted, kClients * kQueries);
    // Every accepted submit is accounted exactly once: attached to an
    // in-flight twin, served from the completed-result arena, or executed.
    EXPECT_EQ(stats.submitted,
              stats.coalesced + stats.result_hits + stats.executed);
    EXPECT_LE(service.session_count(), 4u);
  }
}

TEST(AnalysisService, CoalescingSharesOneExecution) {
  AnalysisService service(ServiceOptions{.threads = 2});
  const SystemId id = service.register_system(random_system(7, 3));

  // Occupy the single background worker with a long simulation so the
  // coalescable twins stay pending long enough to attach.
  QueryDesc slow;
  slow.kind = QueryKind::Simulate;
  slow.sim.horizon = 3'000'000;
  auto blocker = service.submit(id, slow);

  QueryDesc q;
  q.kind = QueryKind::Contention;
  auto first = service.submit(id, q);
  auto second = service.submit(id, q);
  auto third = service.submit(id, q);

  // Cancelling one of several attached tickets must NOT abandon the query.
  EXPECT_FALSE(third.cancel());

  const auto& va = std::get<api::Report<std::vector<prob::AppEstimate>>>(first.get());
  const auto& vb =
      std::get<api::Report<std::vector<prob::AppEstimate>>>(second.get());
  // Shared completion state: the coalesced tickets see the same object.
  EXPECT_EQ(&va, &vb);
  expect_same_estimates(*va, *vb);
  blocker.wait();

  service.drain();
  const auto stats = service.stats();
  EXPECT_GE(stats.coalesced, 1u);
  // blocker + exactly one contention execution (the twins attached).
  EXPECT_EQ(stats.executed, stats.submitted - stats.coalesced);
}

TEST(AnalysisService, CancelAbandonsPendingQueries) {
  AnalysisService service(ServiceOptions{.threads = 2});
  const SystemId id = service.register_system(random_system(5, 3));

  QueryDesc slow;
  slow.kind = QueryKind::Simulate;
  slow.sim.horizon = 3'000'000;
  auto blocker = service.submit(id, slow);

  QueryDesc q;
  q.kind = QueryKind::Wcrt;
  auto doomed = service.submit(id, q);
  EXPECT_TRUE(doomed.cancel());
  EXPECT_EQ(doomed.status(), TicketStatus::Cancelled);
  EXPECT_EQ(doomed.try_get(), nullptr);
  EXPECT_THROW((void)doomed.get(), std::logic_error);
  // Idempotent: a second cancel on the same ticket is a no-op.
  EXPECT_FALSE(doomed.cancel());

  blocker.wait();
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.executed, stats.submitted - stats.cancelled);

  // Cancelling a finished query changes nothing.
  EXPECT_FALSE(blocker.cancel());
  EXPECT_EQ(blocker.status(), TicketStatus::Done);
}

TEST(AnalysisService, SessionLruEvictionIsCorrectnessNeutral) {
  const platform::System sys_a = random_system(31, 3);
  const platform::System sys_b = random_system(32, 4);
  api::Workbench oracle_a(sys_a, api::WorkbenchOptions{.threads = 1});
  api::Workbench oracle_b(sys_b, api::WorkbenchOptions{.threads = 1});
  const auto est_a = oracle_a.contention();
  const auto est_b = oracle_b.contention();

  // Capacity 1: every alternation evicts and rebuilds the other session.
  AnalysisService service(
      ServiceOptions{.threads = 1, .session_capacity = 1});
  const SystemId a = service.register_system(sys_a);
  const SystemId b = service.register_system(sys_b);

  QueryDesc q;
  q.kind = QueryKind::Contention;
  for (int round = 0; round < 3; ++round) {
    const auto va = service.submit(a, q).get();  // rvalue get(): safe copy
    expect_same_estimates(
        *std::get<api::Report<std::vector<prob::AppEstimate>>>(va), *est_a);
    const auto vb = service.submit(b, q).get();
    expect_same_estimates(
        *std::get<api::Report<std::vector<prob::AppEstimate>>>(vb), *est_b);
  }
  const auto stats = service.stats();
  EXPECT_EQ(service.session_count(), 1u);
  EXPECT_EQ(stats.sessions_built, 6u);    // rebuilt on every alternation
  EXPECT_EQ(stats.sessions_evicted, 5u);  // all but the live one
}

TEST(AnalysisService, IdenticalRegistrationsShareOneSession) {
  const platform::System sys = random_system(44, 3);
  AnalysisService service(ServiceOptions{.threads = 1, .session_capacity = 4});
  const SystemId a = service.register_system(sys);
  const SystemId b = service.register_system(sys);  // bitwise identical
  EXPECT_EQ(service.tenant_count(), 2u);

  QueryDesc q;
  q.kind = QueryKind::Throughput;
  q.app = 0;
  const auto va = service.submit(a, q).get();  // rvalue get(): safe copy
  const auto vb = service.submit(b, q).get();
  EXPECT_EQ(std::get<api::Report<analysis::PeriodResult>>(va)->period,
            std::get<api::Report<analysis::PeriodResult>>(vb)->period);
  EXPECT_EQ(service.session_count(), 1u);  // one shared session
  EXPECT_EQ(service.stats().sessions_built, 1u);
}

TEST(AnalysisService, FailedQueriesSurfaceThroughTheTicket) {
  AnalysisService service(ServiceOptions{.threads = 1});
  const SystemId id = service.register_system(random_system(9, 3));
  QueryDesc q;
  q.kind = QueryKind::Throughput;
  q.app = 99;  // out of range: the Workbench throws inside the worker
  auto t = service.submit(id, q);
  t.wait();
  EXPECT_EQ(t.status(), TicketStatus::Failed);
  EXPECT_THROW((void)t.get(), sdf::GraphError);
  EXPECT_THROW((void)service.submit(77, q), std::out_of_range);
}

/// Sink that deep-copies everything (the identity oracle for view sweeps).
class CollectingSink : public api::SweepSink {
 public:
  bool on_use_case(std::size_t index, const api::UseCaseView& r) override {
    indices.push_back(index);
    estimates.emplace_back(r.estimates.begin(), r.estimates.end());
    bounds.emplace_back(r.bounds.begin(), r.bounds.end());
    sims.push_back(r.sim != nullptr ? r.sim->materialise() : sim::SimResult{});
    return true;
  }
  std::vector<std::size_t> indices;
  std::vector<std::vector<prob::AppEstimate>> estimates;
  std::vector<std::vector<wcrt::AppBound>> bounds;
  std::vector<sim::SimResult> sims;
};

TEST(AnalysisService, StreamingSweepMatchesVectorSweep) {
  const platform::System sys = random_system(55, 4);
  AnalysisService service(ServiceOptions{.threads = 2});
  const SystemId id = service.register_system(sys);

  util::Rng rng(3);
  const auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);
  api::SweepOptions sopts;
  sopts.with_wcrt = true;
  sopts.with_sim = true;
  sopts.sim.horizon = 10'000;

  CollectingSink sink;
  const api::SweepSummary summary =
      service.sweep_use_cases(id, use_cases, sopts, sink);
  EXPECT_EQ(summary.delivered, use_cases.size());
  EXPECT_FALSE(summary.stopped_early);

  api::Workbench oracle(sys, api::WorkbenchOptions{.threads = 1});
  const auto vec = oracle.sweep_use_cases(use_cases, sopts);
  ASSERT_EQ(vec->size(), sink.estimates.size());
  for (std::size_t i = 0; i < vec->size(); ++i) {
    EXPECT_EQ(sink.indices[i], i);
    expect_same_estimates(sink.estimates[i], (*vec)[i].estimates);
    ASSERT_EQ(sink.bounds[i].size(), (*vec)[i].bounds.size());
    for (std::size_t k = 0; k < sink.bounds[i].size(); ++k) {
      EXPECT_EQ(sink.bounds[i][k].worst_case_period,
                (*vec)[i].bounds[k].worst_case_period);
    }
    expect_same_sim(sink.sims[i], (*vec)[i].sim);
  }

  // Early stop: the sink controls consumption.
  class StopAfterOne : public api::SweepSink {
   public:
    bool on_use_case(std::size_t, const api::UseCaseView&) override {
      ++seen;
      return false;
    }
    std::size_t seen = 0;
  };
  StopAfterOne stopper;
  const auto stopped = service.sweep_use_cases(id, use_cases, {}, stopper);
  EXPECT_TRUE(stopped.stopped_early);
  EXPECT_EQ(stopped.delivered, 1u);
  EXPECT_EQ(stopper.seen, 1u);
}

TEST(AnalysisService, SweepIsNotStarvedByAContinuousSubmitStream) {
  const platform::System sys = random_system(66, 4);
  AnalysisService service(ServiceOptions{.threads = 2});
  const SystemId id = service.register_system(sys);

  util::Rng rng(5);
  const auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);

  // A client hammering the same session in a tight loop until told to stop:
  // without boundary-yield the sweep's acquisition predicate would never
  // see an empty queue.
  std::atomic<bool> stop{false};
  std::thread hammer([&] {
    QueryDesc q;
    q.kind = QueryKind::Throughput;
    while (!stop.load()) {
      auto t = service.submit(id, q);
      t.wait();
    }
  });

  class CountSink : public api::SweepSink {
   public:
    bool on_use_case(std::size_t, const api::UseCaseView&) override {
      ++seen;
      return true;
    }
    std::size_t seen = 0;
  };
  CountSink sink;
  const auto summary = service.sweep_use_cases(id, use_cases, {}, sink);
  EXPECT_EQ(summary.delivered, use_cases.size());
  EXPECT_EQ(sink.seen, use_cases.size());

  stop.store(true);
  hammer.join();
  service.drain();
  EXPECT_EQ(service.stats().submitted,
            service.stats().executed + service.stats().coalesced +
                service.stats().result_hits + service.stats().cancelled);
}

TEST(AnalysisService, CancelAfterCoalesceDoesNotAbandonTheLeader) {
  AnalysisService service(ServiceOptions{.threads = 2});
  const SystemId id = service.register_system(random_system(61, 3));

  QueryDesc slow;
  slow.kind = QueryKind::Simulate;
  slow.sim.horizon = 3'000'000;
  auto blocker = service.submit(id, slow);

  QueryDesc q;
  q.kind = QueryKind::Contention;
  auto leader = service.submit(id, q);
  auto twin = service.submit(id, q);  // coalesces onto the leader's state

  // The twin bails out after having coalesced: the query must survive (the
  // leader is still attached). Status is shared, so the withdrawn twin
  // still observes the query's outcome — cancel() withdraws interest, it
  // does not sever the attachment.
  EXPECT_FALSE(twin.cancel());
  EXPECT_NE(twin.status(), TicketStatus::Cancelled);

  const auto& v =
      std::get<api::Report<std::vector<prob::AppEstimate>>>(leader.get());
  EXPECT_FALSE(v->empty());
  // The withdrawn twin reads the very same shared value.
  EXPECT_EQ(&std::get<api::Report<std::vector<prob::AppEstimate>>>(twin.get()),
            &v);
  blocker.wait();
  service.drain();
  EXPECT_EQ(service.stats().cancelled, 0u);  // never abandoned
}

TEST(AnalysisService, CoalescedFollowerOutlivesACancelledLeader) {
  AnalysisService service(ServiceOptions{.threads = 2});
  const SystemId id = service.register_system(random_system(62, 3));

  QueryDesc slow;
  slow.kind = QueryKind::Simulate;
  slow.sim.horizon = 3'000'000;
  auto blocker = service.submit(id, slow);

  QueryDesc q;
  q.kind = QueryKind::Wcrt;
  auto leader = service.submit(id, q);
  auto follower = service.submit(id, q);

  // The ticket that *created* the query cancels; the coalesced follower
  // keeps it alive and still gets the result.
  EXPECT_FALSE(leader.cancel());
  const auto& v =
      std::get<api::Report<std::vector<wcrt::AppBound>>>(follower.get());
  EXPECT_FALSE(v->empty());

  // Only when the LAST attached ticket cancels is the query abandoned:
  // rehearse on a fresh pending pair.
  QueryDesc q2;
  q2.kind = QueryKind::Contention;
  auto a = service.submit(id, q2);
  auto b = service.submit(id, q2);
  const bool abandoned_by_a = a.cancel();
  const bool abandoned_by_b = b.cancel();
  // Exactly the second cancel abandons — unless the worker already picked
  // the query up (Running is never abandoned), in which case neither did.
  EXPECT_FALSE(abandoned_by_a && abandoned_by_b);
  if (abandoned_by_b) {
    EXPECT_EQ(a.status(), TicketStatus::Cancelled);
    EXPECT_EQ(b.status(), TicketStatus::Cancelled);
  }
  blocker.wait();
  service.drain();
}

TEST(AnalysisService, DestructionWithInFlightCoalescedTicketsIsSafe) {
  std::optional<QueryTicket> leader;
  std::optional<QueryTicket> twin;
  std::optional<QueryTicket> cancelled;
  {
    AnalysisService service(ServiceOptions{.threads = 2});
    const SystemId id = service.register_system(random_system(63, 3));
    QueryDesc slow;
    slow.kind = QueryKind::Simulate;
    slow.sim.horizon = 1'000'000;
    auto blocker = service.submit(id, slow);

    QueryDesc q;
    q.kind = QueryKind::Contention;
    leader.emplace(service.submit(id, q));
    twin.emplace(service.submit(id, q));
    cancelled.emplace(service.submit(id, q));
    EXPECT_FALSE(cancelled->cancel());
    // The service dies here with the coalesced pair still in flight: the
    // destructor drains, so both tickets complete.
  }
  // Tickets own their shared state — readable after the service is gone.
  EXPECT_EQ(leader->status(), TicketStatus::Done);
  const auto& va =
      std::get<api::Report<std::vector<prob::AppEstimate>>>(leader->get());
  const auto& vb =
      std::get<api::Report<std::vector<prob::AppEstimate>>>(twin->get());
  EXPECT_EQ(&va, &vb);  // one shared execution, one shared value
  // The withdrawn ticket shares the same state: the query survived it, so
  // it too reads Done and the same value.
  EXPECT_EQ(cancelled->status(), TicketStatus::Done);
  EXPECT_EQ(&std::get<api::Report<std::vector<prob::AppEstimate>>>(
                cancelled->get()),
            &va);
}

TEST(AnalysisService, ResultCacheServesRepeatsWithoutReExecution) {
  AnalysisService service(ServiceOptions{.threads = 1});
  const SystemId id = service.register_system(random_system(64, 3));
  QueryDesc q;
  q.kind = QueryKind::Contention;

  const auto first = service.submit(id, q);
  first.wait();
  // A repeat after completion (nothing in flight to coalesce with) must be
  // served from the shared-result arena, aliasing the same value.
  const auto repeat = service.submit(id, q);
  const auto& va =
      std::get<api::Report<std::vector<prob::AppEstimate>>>(first.get());
  const auto& vb =
      std::get<api::Report<std::vector<prob::AppEstimate>>>(repeat.get());
  EXPECT_EQ(&va, &vb);

  const auto stats = service.stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.result_hits, 1u);

  // share(): the arena slot outlives every ticket AND the service.
  std::shared_ptr<const QueryValue> kept = repeat.share();
  EXPECT_EQ(&std::get<api::Report<std::vector<prob::AppEstimate>>>(*kept),
            &va);
}

}  // namespace
}  // namespace procon
