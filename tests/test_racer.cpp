// dse::Racer — determinism, oracle equivalence, elimination accounting and
// similarity pruning.
//
// The racer's contract is the repo's standing one: the winner, every
// per-arm outcome and every statistic are bitwise identical for any thread
// count, pool size and transposition-table state; oracle mode
// (enabled = false) reproduces the exhaustive paths bitwise; and racing
// mode trades full-precision evaluations for a bounded quality loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/workbench.h"
#include "dse/buffer_explorer.h"
#include "dse/mapper.h"
#include "dse/racer.h"
#include "gen/graph_generator.h"
#include "helpers.h"
#include "platform/system.h"
#include "util/rng.h"

namespace procon {
namespace {

using api::Workbench;
using api::WorkbenchOptions;
using procon::testing::fig2_system;

platform::System random_system(std::uint64_t seed, std::size_t apps) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 7;
  auto graphs = gen::generate_graphs(rng, gopts, apps);
  std::size_t max_actors = 0;
  for (const auto& g : graphs) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(graphs, plat);
  return platform::System(std::move(graphs), std::move(plat), std::move(map));
}

std::vector<platform::Mapping> random_candidates(const platform::System& sys,
                                                 std::size_t count,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<platform::Mapping> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(
        platform::Mapping::random(sys.apps(), sys.platform(), rng));
  }
  return out;
}

void expect_outcomes_equal(const dse::ArmOutcome& a, const dse::ArmOutcome& b) {
  EXPECT_EQ(a.score, b.score);  // bitwise: both sides are doubles
  EXPECT_EQ(a.full, b.full);
  EXPECT_EQ(a.pulls, b.pulls);
  EXPECT_EQ(a.eliminated_round, b.eliminated_round);
}

void expect_stats_equal(const dse::RacerStats& a, const dse::RacerStats& b) {
  EXPECT_EQ(a.races, b.races);
  EXPECT_EQ(a.arms, b.arms);
  EXPECT_EQ(a.pruned_similar, b.pruned_similar);
  EXPECT_EQ(a.estimator_pulls, b.estimator_pulls);
  EXPECT_EQ(a.sim_pulls, b.sim_pulls);
  EXPECT_EQ(a.full_evals, b.full_evals);
  EXPECT_EQ(a.eliminated, b.eliminated);
  EXPECT_EQ(a.rounds, b.rounds);
  for (std::size_t r = 0; r < dse::RacerStats::kMaxRounds; ++r) {
    EXPECT_EQ(a.eliminated_per_round[r], b.eliminated_per_round[r]);
  }
}

// Three-stage pipeline with a feedback ring: the frontier walks several
// points from the minimal configuration down to the unbounded period.
sdf::Graph pipeline_graph() {
  sdf::Graph g("pipe3");
  const auto a = g.add_actor("a", 5);
  const auto b = g.add_actor("b", 7);
  const auto c = g.add_actor("c", 9);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, c, 1, 1, 0);
  g.add_channel(c, a, 1, 1, 6);
  return g;
}

dse::RacerOptions racing_on() {
  dse::RacerOptions r;
  r.enabled = true;
  r.estimator_pulls = 2;
  r.sim_pulls = 1;
  r.sim_horizon = 5'000;
  r.max_survivors = 2;
  return r;
}

// ---- thread-count invariance ----------------------------------------------

TEST(Racer, MappingRaceBitwiseIdenticalAcrossThreadCounts) {
  const platform::System sys = random_system(42, 3);
  const auto candidates = random_candidates(sys, 12, 7);
  std::vector<dse::MappingRace> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Workbench wb(sys, WorkbenchOptions{.threads = threads});
    runs.push_back(*wb.race_mappings(candidates, {}, racing_on()));
  }
  for (std::size_t k = 1; k < runs.size(); ++k) {
    EXPECT_EQ(runs[k].best, runs[0].best);
    ASSERT_EQ(runs[k].scores.size(), runs[0].scores.size());
    for (std::size_t i = 0; i < runs[0].scores.size(); ++i) {
      EXPECT_EQ(runs[k].scores[i], runs[0].scores[i]);  // bitwise
      expect_outcomes_equal(runs[k].outcomes[i], runs[0].outcomes[i]);
    }
    expect_stats_equal(runs[k].stats, runs[0].stats);
  }
}

TEST(Racer, RacingMapperBitwiseIdenticalAcrossThreadCounts) {
  const platform::System sys = random_system(5, 3);
  dse::MapperOptions opts;
  opts.iterations = 60;
  opts.seed = 9;
  opts.racer = racing_on();
  opts.racer.batch = 6;
  std::vector<dse::MapperResult> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Workbench wb(sys, WorkbenchOptions{.threads = threads});
    runs.push_back(*wb.optimise_mapping(opts));
  }
  for (std::size_t k = 1; k < runs.size(); ++k) {
    EXPECT_EQ(runs[k].score, runs[0].score);  // bitwise
    EXPECT_EQ(runs[k].initial_score, runs[0].initial_score);
    EXPECT_EQ(runs[k].evaluations, runs[0].evaluations);
    EXPECT_EQ(runs[k].accepted_moves, runs[0].accepted_moves);
    EXPECT_EQ(runs[k].scored_candidates, runs[0].scored_candidates);
    expect_stats_equal(runs[k].racer, runs[0].racer);
    // The winning mapping itself, actor by actor.
    for (std::size_t app = 0; app < sys.apps().size(); ++app) {
      for (std::size_t actor = 0; actor < sys.apps()[app].actor_count(); ++actor) {
        EXPECT_EQ(runs[k].mapping.node_of(static_cast<sdf::AppId>(app),
                                          static_cast<sdf::ActorId>(actor)),
                  runs[0].mapping.node_of(static_cast<sdf::AppId>(app),
                                          static_cast<sdf::ActorId>(actor)));
      }
    }
  }
}

TEST(Racer, TranspositionTableStateDoesNotChangeTheRace) {
  const platform::System sys = random_system(42, 3);
  const auto candidates = random_candidates(sys, 12, 7);
  Workbench cold(sys, WorkbenchOptions{.threads = 2});
  const auto first = *cold.race_mappings(candidates, {}, racing_on());
  // Same session again: every tier now hits the table.
  const auto warm = *cold.race_mappings(candidates, {}, racing_on());
  EXPECT_EQ(warm.best, first.best);
  for (std::size_t i = 0; i < first.scores.size(); ++i) {
    EXPECT_EQ(warm.scores[i], first.scores[i]);
    expect_outcomes_equal(warm.outcomes[i], first.outcomes[i]);
  }
}

// ---- oracle mode ----------------------------------------------------------

TEST(Racer, OracleModeMatchesScoreMappingsAndEvaluateMapping) {
  const platform::System sys = random_system(17, 3);
  const auto candidates = random_candidates(sys, 8, 3);
  Workbench wb(sys, WorkbenchOptions{.threads = 2});
  dse::RacerOptions oracle;
  oracle.enabled = false;
  const auto race = *wb.race_mappings(candidates, {}, oracle);
  const auto scores = *wb.score_mappings(candidates);
  ASSERT_EQ(race.scores.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(race.scores[i], scores[i]);  // bitwise
    EXPECT_EQ(race.scores[i],
              dse::evaluate_mapping(sys.apps(), sys.platform(), candidates[i]));
    EXPECT_TRUE(race.outcomes[i].full);
  }
  // The winner is the argmin of the exhaustive scores (ties to lowest index).
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] < scores[best]) best = i;
  }
  EXPECT_EQ(race.best, best);
  // Oracle races save nothing.
  EXPECT_EQ(race.stats.full_evals, candidates.size() - race.stats.pruned_similar);
  EXPECT_EQ(race.stats.eliminated, 0u);
  EXPECT_EQ(race.stats.estimator_pulls, 0u);
  EXPECT_EQ(race.stats.sim_pulls, 0u);
}

TEST(Racer, BufferFrontierOracleMatchesLegacyExplorer) {
  const sdf::Graph g = pipeline_graph();
  dse::BufferExplorerOptions opts;
  opts.max_steps = 32;
  const auto legacy = dse::explore_buffer_tradeoff(g, opts);
  const dse::FrontierResult full = dse::explore_buffer_frontier(g, opts);
  ASSERT_EQ(full.points.size(), legacy.size());
  for (std::size_t k = 0; k < legacy.size(); ++k) {
    EXPECT_EQ(full.points[k].capacities, legacy[k].capacities);
    EXPECT_EQ(full.points[k].total_tokens, legacy[k].total_tokens);
    EXPECT_EQ(full.points[k].period, legacy[k].period);  // bitwise
  }
  EXPECT_EQ(full.racer.races, 0u);
  EXPECT_EQ(full.racer.full_evals, 0u);
}

// ---- quality vs. the exhaustive path --------------------------------------

TEST(Racer, RacedWinnerQualityWithinToleranceOfExhaustive) {
  for (const std::uint64_t seed : {3u, 11u, 29u}) {
    const platform::System sys = random_system(seed, 3);
    const auto candidates = random_candidates(sys, 16, seed + 1);
    Workbench wb(sys, WorkbenchOptions{.threads = 2});
    dse::RacerOptions oracle;
    oracle.enabled = false;
    const auto exhaustive = *wb.race_mappings(candidates, {}, oracle);
    const auto raced = *wb.race_mappings(candidates, {}, racing_on());
    const double best_exhaustive = exhaustive.scores[exhaustive.best];
    const double best_raced = raced.scores[raced.best];
    // The raced winner is full-precision scored, so it can only be worse
    // than the true optimum — and only within the confidence tolerance.
    EXPECT_GE(best_raced, best_exhaustive - 1e-12);
    EXPECT_LE(best_raced, best_exhaustive * 1.10)
        << "seed " << seed << ": raced winner lost more than 10%";
    // And it must genuinely save full evaluations on 16 arms.
    EXPECT_LT(raced.stats.full_evals, candidates.size());
  }
}

TEST(Racer, RacedBufferFrontierQualityWithinTolerance) {
  const sdf::Graph g = pipeline_graph();
  dse::BufferExplorerOptions opts;
  opts.max_steps = 48;
  const auto exhaustive = dse::explore_buffer_frontier(g, opts);
  dse::BufferExplorerOptions raced_opts = opts;
  raced_opts.racer = racing_on();
  raced_opts.racer.max_survivors = 1;
  raced_opts.racer.resync_every = 12;
  const auto raced = dse::explore_buffer_frontier(g, raced_opts);
  ASSERT_FALSE(exhaustive.points.empty());
  ASSERT_FALSE(raced.points.empty());
  // Both walks start at the minimal feasible configuration...
  EXPECT_EQ(raced.points.front().capacities, exhaustive.points.front().capacities);
  EXPECT_EQ(raced.points.front().period, exhaustive.points.front().period);
  // ...and the raced walk must reach a final period within tolerance of the
  // exhaustive one (greedy detours may cost some extra tokens).
  EXPECT_LE(raced.points.back().period,
            exhaustive.points.back().period * 1.05);
  EXPECT_GT(raced.racer.races, 0u);
}

// ---- elimination accounting -----------------------------------------------

TEST(Racer, EliminationAccountingIsConsistent) {
  const platform::System sys = random_system(23, 3);
  const auto candidates = random_candidates(sys, 14, 4);
  Workbench wb(sys, WorkbenchOptions{.threads = 2});
  const auto race = *wb.race_mappings(candidates, {}, racing_on());
  const dse::RacerStats& s = race.stats;
  EXPECT_EQ(s.races, 1u);
  EXPECT_EQ(s.arms, candidates.size());
  // Every arm is eliminated, pruned as a duplicate, or fully evaluated.
  EXPECT_EQ(s.eliminated + s.pruned_similar + s.full_evals, s.arms);
  // Per-round buckets add up to the elimination total.
  std::uint64_t bucketed = 0;
  for (std::size_t r = 0; r < dse::RacerStats::kMaxRounds; ++r) {
    bucketed += s.eliminated_per_round[r];
  }
  EXPECT_EQ(bucketed, s.eliminated);
  std::uint64_t full_outcomes = 0;
  std::uint64_t eliminated_outcomes = 0;
  for (std::size_t i = 0; i < race.outcomes.size(); ++i) {
    const dse::ArmOutcome& o = race.outcomes[i];
    if (o.full) {
      // Survivors (and pruned duplicates of survivors) carry full scores
      // and no elimination round.
      EXPECT_EQ(o.eliminated_round, -1);
      EXPECT_EQ(race.scores[i], o.score);
      ++full_outcomes;
    } else {
      // An arm eliminated in round r was pulled once per rung 0..r (pruned
      // duplicates copy their representative, including its pull count).
      ASSERT_GE(o.eliminated_round, 0);
      EXPECT_EQ(o.pulls, static_cast<std::uint32_t>(o.eliminated_round + 1));
      ++eliminated_outcomes;
    }
  }
  // Every outcome is one or the other; pruned duplicates mirror their
  // representative, so the per-kind counts can only exceed the unique-arm
  // statistics by the duplicate count.
  EXPECT_EQ(full_outcomes + eliminated_outcomes, race.outcomes.size());
  EXPECT_GE(full_outcomes, s.full_evals);
  EXPECT_GE(eliminated_outcomes, s.eliminated);
  EXPECT_EQ(full_outcomes + eliminated_outcomes,
            s.full_evals + s.eliminated + s.pruned_similar);
}

// ---- similarity pruning ---------------------------------------------------

TEST(Racer, DuplicateCandidatesShareOutcomesBitwise) {
  const platform::System sys = random_system(31, 3);
  auto candidates = random_candidates(sys, 6, 13);
  // Duplicate two candidates (same mapping content => same fingerprint).
  candidates.push_back(candidates[0]);
  candidates.push_back(candidates[3]);
  Workbench wb(sys, WorkbenchOptions{.threads = 2});
  const auto race = *wb.race_mappings(candidates, {}, racing_on());
  EXPECT_EQ(race.stats.pruned_similar, 2u);
  expect_outcomes_equal(race.outcomes[6], race.outcomes[0]);
  expect_outcomes_equal(race.outcomes[7], race.outcomes[3]);
  EXPECT_EQ(race.scores[6], race.scores[0]);  // bitwise
  EXPECT_EQ(race.scores[7], race.scores[3]);
  // The winner never points at a pruned duplicate (ties break low).
  EXPECT_LT(race.best, 6u);
}

TEST(Racer, DuplicatesDoNotChangeTheUniqueArmsRace) {
  const platform::System sys = random_system(31, 3);
  const auto unique = random_candidates(sys, 6, 13);
  auto padded = unique;
  padded.push_back(unique[2]);
  Workbench wb_a(sys, WorkbenchOptions{.threads = 1});
  Workbench wb_b(sys, WorkbenchOptions{.threads = 1});
  const auto race_unique = *wb_a.race_mappings(unique, {}, racing_on());
  const auto race_padded = *wb_b.race_mappings(padded, {}, racing_on());
  for (std::size_t i = 0; i < unique.size(); ++i) {
    EXPECT_EQ(race_padded.scores[i], race_unique.scores[i]);  // bitwise
    expect_outcomes_equal(race_padded.outcomes[i], race_unique.outcomes[i]);
  }
  EXPECT_EQ(race_padded.best, race_unique.best);
}

// ---- direct core API ------------------------------------------------------

// A synthetic source with known scores: arm i's cheap pulls and full
// evaluation all return base + i (zero variance), so the racer must keep
// arm 0 and eliminate everything outside the guard band.
class LinearArms final : public dse::ArmSource {
 public:
  explicit LinearArms(double base) : base_(base) {}
  [[nodiscard]] std::uint64_t arm_fingerprint(std::size_t arm) const override {
    return 0x1000 + arm;  // all distinct: no pruning
  }
  [[nodiscard]] double pull(std::size_t arm, std::size_t, std::size_t) override {
    ++cheap_;
    return base_ + static_cast<double>(arm);
  }
  [[nodiscard]] double full_eval(std::size_t arm, std::size_t) override {
    ++full_;
    return base_ + static_cast<double>(arm);
  }
  std::size_t cheap_ = 0;
  std::size_t full_ = 0;

 private:
  double base_;
};

TEST(Racer, CoreEliminatesDominatedArmsAndKeepsTheBest) {
  dse::Racer racer;
  LinearArms arms(1.0);
  dse::RacerOptions opts;
  opts.enabled = true;
  opts.estimator_pulls = 2;
  opts.sim_pulls = 0;
  opts.max_survivors = 1;
  std::vector<dse::ArmOutcome> outcomes(8);
  const std::size_t best = racer.race(opts, 8, arms, outcomes);
  EXPECT_EQ(best, 0u);
  EXPECT_TRUE(outcomes[0].full);
  EXPECT_EQ(outcomes[0].score, 1.0);
  // With zero variance and 2% slack around mean 1.0, arms >= 2 are clearly
  // separated and must have been eliminated before full precision.
  for (std::size_t i = 2; i < 8; ++i) {
    EXPECT_FALSE(outcomes[i].full) << "arm " << i;
    EXPECT_GE(outcomes[i].eliminated_round, 0);
  }
  EXPECT_LT(arms.full_, 8u);
  EXPECT_EQ(racer.stats().races, 1u);
}

TEST(Racer, CoreOracleModeFullEvaluatesEveryArm) {
  dse::Racer racer;
  LinearArms arms(1.0);
  dse::RacerOptions opts;
  opts.enabled = false;
  std::vector<dse::ArmOutcome> outcomes(5);
  const std::size_t best = racer.race(opts, 5, arms, outcomes);
  EXPECT_EQ(best, 0u);
  EXPECT_EQ(arms.cheap_, 0u);
  EXPECT_EQ(arms.full_, 5u);
  for (const auto& o : outcomes) EXPECT_TRUE(o.full);
}

TEST(Racer, CoreRejectsMismatchedOutcomeSpan) {
  dse::Racer racer;
  LinearArms arms(1.0);
  std::vector<dse::ArmOutcome> outcomes(3);
  EXPECT_THROW((void)racer.race({}, 4, arms, outcomes), std::invalid_argument);
  EXPECT_THROW((void)racer.race({}, 0, arms, {}), std::invalid_argument);
}

}  // namespace
}  // namespace procon
