#include "util/rational.h"

#include <gtest/gtest.h>

#include <sstream>

namespace procon::util {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, NormalisesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalisesSign) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), RationalError);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 3) + Rational(1, 6), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(3, 4) - Rational(1, 4), Rational(1, 2));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1) / Rational(0), RationalError);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(5, 10), Rational(1, 2));
}

TEST(Rational, FloorCeilTrunc) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(7, 2).trunc(), 3);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-7, 2).trunc(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

TEST(Rational, Reciprocal) {
  EXPECT_EQ(Rational(2, 3).reciprocal(), Rational(3, 2));
  EXPECT_THROW((void)Rational(0).reciprocal(), RationalError);
}

TEST(Rational, Abs) {
  EXPECT_EQ(Rational(-3, 2).abs(), Rational(3, 2));
  EXPECT_EQ(Rational(3, 2).abs(), Rational(3, 2));
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(1, 3).to_string(), "1/3");
  std::ostringstream os;
  os << Rational(-2, 6);
  EXPECT_EQ(os.str(), "-1/3");
}

TEST(Rational, OverflowDetected) {
  const Rational big(INT64_MAX, 1);
  EXPECT_THROW(big * Rational(2), RationalError);
  EXPECT_THROW(big + big, RationalError);
}

TEST(Rational, CrossReductionDelaysOverflow) {
  // (2^40 / 3) * (3 / 2^40) must not overflow thanks to cross-reduction.
  const Rational a(1LL << 40, 3);
  const Rational b(3, 1LL << 40);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Gcd64, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(7, 0), 7);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(1, 1), 1);
}

TEST(Lcm64, Basics) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 5), 0);
  EXPECT_EQ(lcm64(7, 7), 7);
}

// Property: arithmetic identities hold over a spread of values.
class RationalProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RationalProperty, AdditiveInverse) {
  const auto [n, d] = GetParam();
  const Rational r(n, d);
  EXPECT_EQ(r + (-r), Rational(0));
}

TEST_P(RationalProperty, MultiplicativeRoundTrip) {
  const auto [n, d] = GetParam();
  const Rational r(n, d);
  if (!r.is_zero()) {
    EXPECT_EQ(r * r.reciprocal(), Rational(1));
  }
}

TEST_P(RationalProperty, FloorCeilBracket) {
  const auto [n, d] = GetParam();
  const Rational r(n, d);
  EXPECT_LE(Rational(r.floor()), r);
  EXPECT_GE(Rational(r.ceil()), r);
  EXPECT_LE(r.ceil() - r.floor(), 1);
}

INSTANTIATE_TEST_SUITE_P(Values, RationalProperty,
                         ::testing::Values(std::pair{1, 3}, std::pair{-5, 7},
                                           std::pair{0, 9}, std::pair{22, 7},
                                           std::pair{-100, 3}, std::pair{17, 17},
                                           std::pair{1000001, 999}));

}  // namespace
}  // namespace procon::util
