#include "util/symmetric_poly.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace procon::util {
namespace {

TEST(ElementarySymmetric, EmptyInput) {
  const auto e = elementary_symmetric({});
  ASSERT_EQ(e.size(), 1u);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
}

TEST(ElementarySymmetric, SingleValue) {
  const std::vector<double> xs{0.5};
  const auto e = elementary_symmetric(xs);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_DOUBLE_EQ(e[1], 0.5);
}

TEST(ElementarySymmetric, TwoValues) {
  const std::vector<double> xs{2.0, 3.0};
  const auto e = elementary_symmetric(xs);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_DOUBLE_EQ(e[1], 5.0);   // 2 + 3
  EXPECT_DOUBLE_EQ(e[2], 6.0);   // 2 * 3
}

TEST(ElementarySymmetric, ThreeValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto e = elementary_symmetric(xs);
  EXPECT_DOUBLE_EQ(e[1], 6.0);   // 1+2+3
  EXPECT_DOUBLE_EQ(e[2], 11.0);  // 1*2 + 1*3 + 2*3
  EXPECT_DOUBLE_EQ(e[3], 6.0);   // 1*2*3
}

TEST(ElementarySymmetric, GeneratingFunctionIdentity) {
  // prod(1 + x_i t) evaluated at t = 1 equals sum of e_j.
  const std::vector<double> xs{0.1, 0.2, 0.3, 0.4, 0.5};
  const auto e = elementary_symmetric(xs);
  double sum = 0.0;
  for (const double v : e) sum += v;
  double prod = 1.0;
  for (const double x : xs) prod *= 1.0 + x;
  EXPECT_NEAR(sum, prod, 1e-12);
}

TEST(RemoveOne, InverseOfInsertion) {
  const std::vector<double> xs{0.3, 0.7, 0.2, 0.9};
  const auto e_all = elementary_symmetric(xs);
  // Removing 0.7 must give the polynomials of {0.3, 0.2, 0.9}.
  const std::vector<double> expected_set{0.3, 0.2, 0.9};
  const auto expected = elementary_symmetric(expected_set);
  const auto reduced = elementary_symmetric_remove_one(e_all, 0.7);
  ASSERT_EQ(reduced.size(), expected.size());
  for (std::size_t j = 0; j < reduced.size(); ++j) {
    EXPECT_NEAR(reduced[j], expected[j], 1e-12) << "degree " << j;
  }
}

TEST(RemoveOne, RemoveZeroIsTruncation) {
  const std::vector<double> xs{0.0, 0.5, 0.25};
  const auto e = elementary_symmetric(xs);
  const auto reduced = elementary_symmetric_remove_one(e, 0.0);
  const std::vector<double> rest{0.5, 0.25};
  const auto expected = elementary_symmetric(rest);
  for (std::size_t j = 0; j < reduced.size(); ++j) {
    EXPECT_NEAR(reduced[j], expected[j], 1e-12);
  }
}

TEST(SingleDegree, MatchesFullDp) {
  const std::vector<double> xs{0.4, 0.6, 0.8, 0.1};
  for (std::size_t j = 0; j <= xs.size(); ++j) {
    EXPECT_NEAR(elementary_symmetric_single(xs, j), elementary_symmetric(xs)[j], 1e-12);
  }
  EXPECT_DOUBLE_EQ(elementary_symmetric_single(xs, 7), 0.0);  // beyond degree
}

// Property sweep: random probability vectors, every leave-one-out family
// matches a from-scratch computation.
class RemoveOneProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RemoveOneProperty, AllLeaveOneOutFamiliesExact) {
  Rng rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform01();
  const auto e = elementary_symmetric(xs);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> rest;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) rest.push_back(xs[k]);
    }
    const auto expected = elementary_symmetric(rest);
    const auto reduced = elementary_symmetric_remove_one(e, xs[i]);
    ASSERT_EQ(reduced.size(), expected.size());
    for (std::size_t j = 0; j < reduced.size(); ++j) {
      EXPECT_NEAR(reduced[j], expected[j], 1e-9)
          << "seed=" << GetParam() << " i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemoveOneProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace procon::util
