#include "sdf/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "helpers.h"

namespace procon::sdf {
namespace {

TEST(Io, RoundTripPaperGraph) {
  const Graph g = procon::testing::fig2_graph_a();
  const Graph g2 = graph_from_text(to_text(g));
  EXPECT_EQ(g2.name(), g.name());
  ASSERT_EQ(g2.actor_count(), g.actor_count());
  ASSERT_EQ(g2.channel_count(), g.channel_count());
  for (ActorId a = 0; a < g.actor_count(); ++a) {
    EXPECT_EQ(g2.actor(a).name, g.actor(a).name);
    EXPECT_EQ(g2.actor(a).exec_time, g.actor(a).exec_time);
  }
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    EXPECT_EQ(g2.channel(c).src, g.channel(c).src);
    EXPECT_EQ(g2.channel(c).dst, g.channel(c).dst);
    EXPECT_EQ(g2.channel(c).prod_rate, g.channel(c).prod_rate);
    EXPECT_EQ(g2.channel(c).cons_rate, g.channel(c).cons_rate);
    EXPECT_EQ(g2.channel(c).initial_tokens, g.channel(c).initial_tokens);
  }
}

TEST(Io, ParsesCommentsAndBlankLines) {
  const std::string text = R"(# a comment
graph demo

actor x 5
# another comment
actor y 7
channel x y 1 1 0
channel y x 1 1 1
end
)";
  const Graph g = graph_from_text(text);
  EXPECT_EQ(g.name(), "demo");
  EXPECT_EQ(g.actor_count(), 2u);
  EXPECT_EQ(g.channel_count(), 2u);
}

TEST(Io, MultipleGraphs) {
  std::ostringstream os;
  write_graph(os, procon::testing::fig2_graph_a());
  write_graph(os, procon::testing::fig2_graph_b());
  std::istringstream is(os.str());
  const auto graphs = read_graphs(is);
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].name(), "A");
  EXPECT_EQ(graphs[1].name(), "B");
}

TEST(Io, ErrorUnknownActor) {
  const std::string text = "graph g\nactor a 1\nchannel a zz 1 1 0\nend\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(Io, ErrorDuplicateActor) {
  const std::string text = "graph g\nactor a 1\nactor a 2\nend\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(Io, ErrorMissingEnd) {
  const std::string text = "graph g\nactor a 1\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(Io, ErrorActorBeforeGraph) {
  EXPECT_THROW(graph_from_text("actor a 1\nend\n"), ParseError);
}

TEST(Io, ErrorBadChannelParams) {
  const std::string text = "graph g\nactor a 1\nchannel a a 0 1 0\nend\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(Io, ErrorUnknownKeyword) {
  EXPECT_THROW(graph_from_text("graph g\nfrobnicate\nend\n"), ParseError);
}

TEST(Io, ErrorEmptyInput) {
  EXPECT_THROW(graph_from_text(""), ParseError);
}

TEST(Io, ErrorMentionsLineNumber) {
  const std::string text = "graph g\nactor a 1\nchannel a b 1 1 0\nend\n";
  try {
    (void)graph_from_text(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Io, RoundTripStochasticModelBitwise) {
  const Graph g = procon::testing::fig2_graph_a();
  ExecTimeModel model;
  model.push_back(ExecTimeDistribution::uniform(2, 7));
  model.push_back(ExecTimeDistribution::discrete(
      {{3, 0.2}, {5, 0.5}, {11, 0.3}}));
  for (ActorId a = 2; a < g.actor_count(); ++a) {
    model.push_back(ExecTimeDistribution::constant(g.actor(a).exec_time));
  }

  std::ostringstream os;
  write_graph(os, g, model);
  std::istringstream is(os.str());
  ExecTimeModel back;
  const Graph g2 = read_graph(is, back);

  EXPECT_EQ(g2.actor_count(), g.actor_count());
  ASSERT_EQ(back.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(back[i].outcomes().size(), model[i].outcomes().size());
    for (std::size_t k = 0; k < model[i].outcomes().size(); ++k) {
      EXPECT_EQ(back[i].outcomes()[k].value, model[i].outcomes()[k].value);
      // Hexfloat weights + from_normalised: bitwise, not approximate.
      EXPECT_EQ(back[i].outcomes()[k].weight, model[i].outcomes()[k].weight);
    }
    EXPECT_EQ(back[i].mean(), model[i].mean());
    EXPECT_EQ(back[i].second_moment(), model[i].second_moment());
    // Sampling reads the cumulative table: identical draws prove it was
    // rebuilt bitwise too.
    util::Rng rng_a(99);
    util::Rng rng_b(99);
    for (int d = 0; d < 64; ++d) {
      EXPECT_EQ(back[i].sample(rng_a), model[i].sample(rng_b));
    }
  }
}

TEST(Io, ModelAwareReadDefaultsMissingDistToConstant) {
  const std::string text =
      "graph g\nactor a 4\nactor b 6\ndist a uniform 3 5\n"
      "channel a b 1 1 0\nchannel b a 1 1 1\nend\n";
  std::istringstream is(text);
  ExecTimeModel model;
  const Graph g = read_graph(is, model);
  ASSERT_EQ(model.size(), 2u);
  EXPECT_FALSE(model[0].is_constant());
  ASSERT_TRUE(model[1].is_constant());
  EXPECT_EQ(model[1].outcomes()[0].value, g.actor(1).exec_time);
}

TEST(Io, ModelFreeReadRejectsDistLines) {
  // The model-free parser must not silently drop a stochastic model.
  const std::string text =
      "graph g\nactor a 4\ndist a uniform 3 5\nend\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
  std::istringstream is(text);
  EXPECT_THROW((void)read_graphs(is), ParseError);
}

TEST(Io, DotContainsActorsAndRates) {
  const std::string dot = to_dot(procon::testing::fig2_graph_a());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("a0"), std::string::npos);
  EXPECT_NE(dot.find("2/1"), std::string::npos);
  EXPECT_NE(dot.find("[1]"), std::string::npos);  // initial token annotation
}

}  // namespace
}  // namespace procon::sdf
