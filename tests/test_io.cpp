#include "sdf/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "helpers.h"

namespace procon::sdf {
namespace {

TEST(Io, RoundTripPaperGraph) {
  const Graph g = procon::testing::fig2_graph_a();
  const Graph g2 = graph_from_text(to_text(g));
  EXPECT_EQ(g2.name(), g.name());
  ASSERT_EQ(g2.actor_count(), g.actor_count());
  ASSERT_EQ(g2.channel_count(), g.channel_count());
  for (ActorId a = 0; a < g.actor_count(); ++a) {
    EXPECT_EQ(g2.actor(a).name, g.actor(a).name);
    EXPECT_EQ(g2.actor(a).exec_time, g.actor(a).exec_time);
  }
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    EXPECT_EQ(g2.channel(c).src, g.channel(c).src);
    EXPECT_EQ(g2.channel(c).dst, g.channel(c).dst);
    EXPECT_EQ(g2.channel(c).prod_rate, g.channel(c).prod_rate);
    EXPECT_EQ(g2.channel(c).cons_rate, g.channel(c).cons_rate);
    EXPECT_EQ(g2.channel(c).initial_tokens, g.channel(c).initial_tokens);
  }
}

TEST(Io, ParsesCommentsAndBlankLines) {
  const std::string text = R"(# a comment
graph demo

actor x 5
# another comment
actor y 7
channel x y 1 1 0
channel y x 1 1 1
end
)";
  const Graph g = graph_from_text(text);
  EXPECT_EQ(g.name(), "demo");
  EXPECT_EQ(g.actor_count(), 2u);
  EXPECT_EQ(g.channel_count(), 2u);
}

TEST(Io, MultipleGraphs) {
  std::ostringstream os;
  write_graph(os, procon::testing::fig2_graph_a());
  write_graph(os, procon::testing::fig2_graph_b());
  std::istringstream is(os.str());
  const auto graphs = read_graphs(is);
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].name(), "A");
  EXPECT_EQ(graphs[1].name(), "B");
}

TEST(Io, ErrorUnknownActor) {
  const std::string text = "graph g\nactor a 1\nchannel a zz 1 1 0\nend\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(Io, ErrorDuplicateActor) {
  const std::string text = "graph g\nactor a 1\nactor a 2\nend\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(Io, ErrorMissingEnd) {
  const std::string text = "graph g\nactor a 1\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(Io, ErrorActorBeforeGraph) {
  EXPECT_THROW(graph_from_text("actor a 1\nend\n"), ParseError);
}

TEST(Io, ErrorBadChannelParams) {
  const std::string text = "graph g\nactor a 1\nchannel a a 0 1 0\nend\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(Io, ErrorUnknownKeyword) {
  EXPECT_THROW(graph_from_text("graph g\nfrobnicate\nend\n"), ParseError);
}

TEST(Io, ErrorEmptyInput) {
  EXPECT_THROW(graph_from_text(""), ParseError);
}

TEST(Io, ErrorMentionsLineNumber) {
  const std::string text = "graph g\nactor a 1\nchannel a b 1 1 0\nend\n";
  try {
    (void)graph_from_text(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Io, DotContainsActorsAndRates) {
  const std::string dot = to_dot(procon::testing::fig2_graph_a());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("a0"), std::string::npos);
  EXPECT_NE(dot.find("2/1"), std::string::npos);
  EXPECT_NE(dot.find("[1]"), std::string::npos);  // initial token annotation
}

}  // namespace
}  // namespace procon::sdf
