#include "analysis/throughput.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace procon::analysis {
namespace {

using procon::testing::fig2_graph_a;
using sdf::Graph;

TEST(ComputePeriod, PaperGraphs) {
  EXPECT_NEAR(compute_period(fig2_graph_a()).period, 300.0, 1e-6);
  EXPECT_NEAR(compute_period(procon::testing::fig2_graph_b()).period, 300.0, 1e-6);
}

TEST(ComputePeriod, ThroughputIsInverse) {
  const PeriodResult r = compute_period(fig2_graph_a());
  EXPECT_NEAR(r.throughput(), 1.0 / 300.0, 1e-12);
}

TEST(ComputePeriod, ResponseTimeOverrideMatchesPaperSection31) {
  // Response times of Fig. 3 for graph A: [108.33, 66.67, 116.67]
  // -> new period 358.33 (the paper rounds to 359).
  const Graph g = fig2_graph_a();
  const std::vector<double> response{100.0 + 25.0 / 3.0, 50.0 + 50.0 / 3.0,
                                     100.0 + 50.0 / 3.0};
  const PeriodResult r = compute_period(g, response);
  EXPECT_NEAR(r.period, 1075.0 / 3.0, 1e-6);  // 358.333...
}

TEST(ComputePeriod, InconsistentThrows) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 2, 1, 0);
  g.add_channel(b, a, 2, 1, 0);
  EXPECT_THROW((void)compute_period(g), sdf::GraphError);
}

TEST(ComputePeriod, DeadlockedFlagSet) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, a, 1, 1, 0);
  const PeriodResult r = compute_period(g);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.throughput(), 0.0);
}

TEST(ComputePeriod, SingleActor) {
  Graph g;
  g.add_actor("solo", 42);
  const PeriodResult r = compute_period(g);
  // Only the implicit self-loop constrains it: one firing per 42 units.
  EXPECT_NEAR(r.period, 42.0, 1e-9);
}

TEST(Bottleneck, SequentialGraphBlamesWholeCycle) {
  const auto report = find_bottleneck(fig2_graph_a());
  EXPECT_NEAR(report.period, 300.0, 1e-6);
  // Fully sequential: every actor is on the critical cycle.
  EXPECT_EQ(report.actors, (std::vector<sdf::ActorId>{0, 1, 2}));
}

TEST(Bottleneck, SlowActorSingledOut) {
  Graph g;
  const auto x = g.add_actor("slow", 1000);
  const auto y = g.add_actor("fast", 1);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 4);
  const auto report = find_bottleneck(g);
  EXPECT_NEAR(report.period, 1000.0, 1e-6);
  EXPECT_EQ(report.actors, (std::vector<sdf::ActorId>{x}));
}

TEST(Bottleneck, RespondsToExecTimeOverride) {
  Graph g;
  const auto x = g.add_actor("x", 10);
  const auto y = g.add_actor("y", 10);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 4);
  // Override makes y dominant.
  const std::vector<double> times{10.0, 500.0};
  const auto report = find_bottleneck(g, times);
  EXPECT_NEAR(report.period, 500.0, 1e-6);
  EXPECT_EQ(report.actors, (std::vector<sdf::ActorId>{y}));
}

TEST(ComputePeriod, ScalesLinearlyWithExecTimes) {
  const Graph g = fig2_graph_a();
  const std::vector<double> doubled{200.0, 100.0, 200.0};
  EXPECT_NEAR(compute_period(g, doubled).period, 600.0, 1e-6);
}

}  // namespace
}  // namespace procon::analysis
