#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace procon::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = 0.37 * i - 20.0;
    all.add(v);
    (i < 41 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(PercentAbsDiff, Basics) {
  EXPECT_DOUBLE_EQ(percent_abs_diff(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_abs_diff(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_abs_diff(100.0, 100.0), 0.0);
}

TEST(PercentAbsDiff, ZeroReference) {
  EXPECT_DOUBLE_EQ(percent_abs_diff(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(percent_abs_diff(1.0, 0.0)));
}

TEST(PercentAbsDiff, NegativeReference) {
  EXPECT_DOUBLE_EQ(percent_abs_diff(-110.0, -100.0), 10.0);
}

TEST(MeanPercentAbsDiff, PairedSamples) {
  const std::vector<double> est{110.0, 95.0};
  const std::vector<double> ref{100.0, 100.0};
  EXPECT_DOUBLE_EQ(mean_percent_abs_diff(est, ref), 7.5);
}

TEST(MeanPercentAbsDiff, SizeMismatchThrows) {
  const std::vector<double> est{1.0};
  const std::vector<double> ref{1.0, 2.0};
  EXPECT_THROW((void)mean_percent_abs_diff(est, ref), std::invalid_argument);
}

TEST(MeanPercentAbsDiff, Empty) {
  EXPECT_DOUBLE_EQ(mean_percent_abs_diff({}, {}), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
}

}  // namespace
}  // namespace procon::util
