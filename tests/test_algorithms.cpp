#include "sdf/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.h"

namespace procon::sdf {
namespace {

TEST(Scc, SingleCycleIsOneComponent) {
  const Graph g = procon::testing::fig2_graph_a();
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, 1u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, ChainHasOneComponentPerActor) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  const auto c = g.add_actor("c", 1);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, c, 1, 1, 0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, 3u);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, TwoCyclesBridged) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  const auto c = g.add_actor("c", 1);
  const auto d = g.add_actor("d", 1);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, a, 1, 1, 1);
  g.add_channel(b, c, 1, 1, 0);  // bridge
  g.add_channel(c, d, 1, 1, 0);
  g.add_channel(d, c, 1, 1, 1);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, 2u);
  EXPECT_EQ(r.component_of[0], r.component_of[1]);
  EXPECT_EQ(r.component_of[2], r.component_of[3]);
  EXPECT_NE(r.component_of[0], r.component_of[2]);
  // Reverse topological numbering: the sink component {c, d} comes first.
  EXPECT_LT(r.component_of[2], r.component_of[0]);
}

TEST(Scc, EmptyGraphNotStronglyConnected) {
  Graph g;
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, SingleActorIsStronglyConnected) {
  Graph g;
  g.add_actor("a", 1);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Deadlock, PaperGraphsAreFree) {
  EXPECT_TRUE(is_deadlock_free(procon::testing::fig2_graph_a()));
  EXPECT_TRUE(is_deadlock_free(procon::testing::fig2_graph_b()));
  EXPECT_TRUE(is_deadlock_free(procon::testing::fig2_graph_b_reversed()));
}

TEST(Deadlock, TokenlessCycleDeadlocks) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, a, 1, 1, 0);
  EXPECT_FALSE(is_deadlock_free(g));
  const DeadlockDiagnosis diag = diagnose_deadlock(g);
  EXPECT_FALSE(diag.deadlock_free);
  EXPECT_EQ(diag.starved_actors.size(), 2u);
  EXPECT_FALSE(diag.starved_channels.empty());
}

TEST(Deadlock, InsufficientTokensDeadlock) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 1, 2, 0);   // b needs 2 per firing; q = [2, 1]
  g.add_channel(b, a, 2, 1, 1);   // only one token: a fires once, then stuck
  EXPECT_FALSE(is_deadlock_free(g));
}

TEST(Deadlock, ExactlyEnoughTokens) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 1, 2, 0);
  g.add_channel(b, a, 2, 1, 2);
  EXPECT_TRUE(is_deadlock_free(g));
}

TEST(Deadlock, InconsistentGraphReportedNotFree) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  g.add_channel(a, b, 2, 1, 0);
  g.add_channel(b, a, 2, 1, 0);
  EXPECT_FALSE(is_deadlock_free(g));
}

TEST(Deadlock, DiagnosisIdentifiesStarvedChannel) {
  Graph g;
  const auto a = g.add_actor("a", 1);
  const auto b = g.add_actor("b", 1);
  const auto c = g.add_actor("c", 1);
  g.add_channel(a, b, 1, 1, 0);
  const auto cb = g.add_channel(c, b, 1, 1, 0);  // b also needs c's token
  g.add_channel(b, a, 1, 1, 1);
  g.add_channel(b, c, 1, 1, 0);  // c never gets a token first
  const DeadlockDiagnosis diag = diagnose_deadlock(g);
  EXPECT_FALSE(diag.deadlock_free);
  EXPECT_NE(std::find(diag.starved_channels.begin(), diag.starved_channels.end(), cb),
            diag.starved_channels.end());
}

TEST(Deadlock, SelfLoopWithTokenIsFine) {
  Graph g = procon::testing::fig2_graph_a().with_self_loops();
  EXPECT_TRUE(is_deadlock_free(g));
}

}  // namespace
}  // namespace procon::sdf
