// Randomized equivalence suite for the resettable simulation engine:
// SimEngine reset()+run() must be bitwise identical to a fresh simulate()
// of the (materialised) restriction, across arbitration modes, sample
// seeds, and stochastic execution-time models.
#include "sim/sim_engine.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "api/workbench.h"
#include "gen/graph_generator.h"
#include "gen/use_cases.h"
#include "helpers.h"
#include "util/rng.h"

namespace procon::sim {
namespace {

using procon::testing::fig2_system;

platform::System random_system(std::uint64_t seed, std::size_t apps) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = 6;
  auto graphs = gen::generate_graphs(rng, gopts, apps);
  std::size_t max_actors = 0;
  for (const auto& g : graphs) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(graphs, plat);
  return platform::System(std::move(graphs), std::move(plat), std::move(map));
}

void expect_same(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.node_utilisation, b.node_utilisation);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].start, b.trace[i].start);
    EXPECT_EQ(a.trace[i].end, b.trace[i].end);
    EXPECT_EQ(a.trace[i].app, b.trace[i].app);
    EXPECT_EQ(a.trace[i].actor, b.trace[i].actor);
    EXPECT_EQ(a.trace[i].node, b.trace[i].node);
  }
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const AppSimResult& x = a.apps[i];
    const AppSimResult& y = b.apps[i];
    EXPECT_EQ(x.iterations, y.iterations);
    EXPECT_EQ(x.converged, y.converged);
    EXPECT_EQ(x.average_period, y.average_period);  // bitwise, not NEAR
    EXPECT_EQ(x.worst_period, y.worst_period);
    EXPECT_EQ(x.iteration_times, y.iteration_times);
    ASSERT_EQ(x.actors.size(), y.actors.size());
    for (std::size_t k = 0; k < x.actors.size(); ++k) {
      EXPECT_EQ(x.actors[k].firings, y.actors[k].firings);
      EXPECT_EQ(x.actors[k].total_waiting, y.actors[k].total_waiting);
      EXPECT_EQ(x.actors[k].total_service, y.actors[k].total_service);
    }
  }
}

std::vector<sdf::ExecTimeModel> jittered_models(const platform::System& sys,
                                                const platform::UseCase& uc) {
  std::vector<sdf::ExecTimeModel> models;
  for (const sdf::AppId id : uc) {
    sdf::ExecTimeModel m;
    for (const auto& a : sys.app(id).actors()) {
      const sdf::Time d = a.exec_time / 5;
      m.push_back(d == 0 ? sdf::ExecTimeDistribution::constant(a.exec_time)
                         : sdf::ExecTimeDistribution::uniform(a.exec_time - d,
                                                              a.exec_time + d));
    }
    models.push_back(std::move(m));
  }
  return models;
}

TEST(SimEngine, FullRunMatchesFreeFunction) {
  const platform::System sys = fig2_system();
  for (const Arbitration arb :
       {Arbitration::Fcfs, Arbitration::RoundRobin, Arbitration::Tdma}) {
    SimOptions opts;
    opts.horizon = 50'000;
    opts.arbitration = arb;
    opts.collect_trace = true;
    SimEngine engine(sys);
    const SimResult warm = engine.run(opts);
    const SimResult fresh = simulate(sys, opts);
    expect_same(warm, fresh);
  }
}

TEST(SimEngine, RerunAfterResetIsIdentical) {
  const platform::System sys = random_system(17, 4);
  SimEngine engine(sys);
  SimOptions opts;
  opts.horizon = 30'000;
  const SimResult first = engine.run(opts);
  engine.reset();
  const SimResult second = engine.run(opts);
  expect_same(first, second);
}

TEST(SimEngine, RunWithoutResetThrows) {
  SimEngine engine(fig2_system());
  (void)engine.run(SimOptions{.horizon = 1'000});
  EXPECT_THROW((void)engine.run(SimOptions{.horizon = 1'000}), sdf::GraphError);
  engine.reset();
  EXPECT_NO_THROW((void)engine.run(SimOptions{.horizon = 1'000}));
}

TEST(SimEngine, RestrictedRunsMatchMaterialisedCopies) {
  // The central equivalence: reset(uc)+run over the shared engine ==
  // fresh simulate of the restrict_to copy, for every sampled use-case,
  // every arbitration mode, with traces on.
  for (const std::uint64_t seed : {3u, 1234u}) {
    const platform::System sys = random_system(seed, 5);
    SimEngine engine(sys);
    util::Rng rng(seed ^ 0xABC);
    for (const auto& uc : gen::sample_use_cases(sys.app_count(), 2, rng)) {
      for (const Arbitration arb :
           {Arbitration::Fcfs, Arbitration::RoundRobin, Arbitration::Tdma}) {
        SimOptions opts;
        opts.horizon = 20'000;
        opts.arbitration = arb;
        opts.collect_trace = true;
        engine.reset(uc);
        const SimResult warm = engine.run(opts);
        const SimResult fresh = simulate(sys.restrict_to(uc), opts);
        expect_same(warm, fresh);
        // And the zero-copy free-function path agrees too.
        const SimResult via_uc = simulate(sys, uc, opts);
        expect_same(warm, via_uc);
      }
    }
  }
}

TEST(SimEngine, StochasticModelsAndSeedsMatch) {
  const platform::System sys = random_system(77, 4);
  SimEngine engine(sys);
  util::Rng rng(99);
  for (const auto& uc : gen::sample_use_cases(sys.app_count(), 1, rng)) {
    SimOptions opts;
    opts.horizon = 15'000;
    opts.exec_models = jittered_models(sys, uc);
    for (const std::uint64_t sample_seed : {1u, 42u, 0xDEADu}) {
      opts.sample_seed = sample_seed;
      engine.reset(uc);
      const SimResult warm = engine.run(opts);
      const SimResult fresh = simulate(sys.restrict_to(uc), opts);
      expect_same(warm, fresh);
    }
  }
}

TEST(SimEngine, ModelCountValidatedAgainstActiveApps) {
  const platform::System sys = random_system(5, 3);
  SimEngine engine(sys);
  SimOptions opts;
  opts.horizon = 1'000;
  opts.exec_models = jittered_models(sys, {0, 1});  // 2 models, 3 active apps
  EXPECT_THROW((void)engine.run(opts), sdf::GraphError);
  engine.reset({0, 1});
  EXPECT_NO_THROW((void)engine.run(opts));
}

TEST(SimEngine, RejectsBadUseCases) {
  SimEngine engine(fig2_system());
  EXPECT_THROW(engine.reset({0, 0}), sdf::GraphError);    // duplicate
  EXPECT_THROW(engine.reset({0, 7}), sdf::GraphError);    // out of range
  EXPECT_THROW((void)engine.run(SimOptions{.horizon = -1}),
               std::invalid_argument);
}

TEST(SimEngine, WorkbenchSimulateAndSweepUseTheEngine) {
  const platform::System sys = random_system(2025, 4);
  api::Workbench wb(sys, api::WorkbenchOptions{.threads = 2});
  SimOptions opts;
  opts.horizon = 10'000;

  // Session simulate == free function, full and restricted, repeatedly.
  for (int rep = 0; rep < 2; ++rep) {
    expect_same(*wb.simulate(opts), simulate(sys, opts));
    expect_same(*wb.simulate({0, 2}, opts), simulate(sys, {0, 2}, opts));
  }

  // with_sim sweeps return per-use-case simulations identical to the
  // restricted references, for any thread count.
  const auto use_cases = gen::all_use_cases(sys.app_count());
  api::SweepOptions sopts;
  sopts.with_sim = true;
  sopts.sim = opts;
  const auto swept = wb.sweep_use_cases(use_cases, sopts);
  api::Workbench serial(sys, api::WorkbenchOptions{.threads = 1});
  const auto swept_serial = serial.sweep_use_cases(use_cases, sopts);
  ASSERT_EQ(swept->size(), use_cases.size());
  for (std::size_t i = 0; i < use_cases.size(); ++i) {
    expect_same((*swept)[i].sim, simulate(sys, use_cases[i], opts));
    expect_same((*swept)[i].sim, (*swept_serial)[i].sim);
  }
}

TEST(SimEngine, RestrictedSimulateIgnoresInvalidAppsOutsideUseCase) {
  // restrict_to semantics: only the selected applications are validated, so
  // a deadlocked app elsewhere in the system must not block the run (it did
  // not before the SimEngine refactor either).
  std::vector<sdf::Graph> apps;
  apps.push_back(procon::testing::fig2_graph_a());
  sdf::Graph dead("dead");
  const auto x = dead.add_actor("x", 1);
  const auto y = dead.add_actor("y", 1);
  dead.add_channel(x, y, 1, 1, 0);
  dead.add_channel(y, x, 1, 1, 0);  // no initial tokens: deadlock
  apps.push_back(dead);
  platform::Platform plat = platform::Platform::homogeneous(3);
  platform::Mapping map(apps);
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    for (sdf::ActorId a = 0; a < apps[i].actor_count(); ++a) map.assign(i, a, a);
  }
  const platform::System sys(std::move(apps), std::move(plat), std::move(map));

  const SimResult r = simulate(sys, {0}, SimOptions{.horizon = 10'000});
  ASSERT_EQ(r.apps.size(), 1u);
  EXPECT_TRUE(r.apps[0].converged);
  // The full system (and a full engine) still refuses to build.
  EXPECT_THROW((void)simulate(sys, SimOptions{.horizon = 10'000}), sdf::GraphError);
  EXPECT_THROW(SimEngine{sys}, sdf::GraphError);
  // Duplicate entries simulate two independent copies, like restrict_to.
  const SimResult dup = simulate(sys, {0, 0}, SimOptions{.horizon = 10'000});
  ASSERT_EQ(dup.apps.size(), 2u);
}

TEST(SimEngine, SimulateViewOverloadMatches) {
  const platform::System sys = random_system(404, 4);
  const platform::UseCase uc{1, 3};
  SimOptions opts;
  opts.horizon = 12'000;
  const SimResult via_view = simulate(platform::SystemView(sys, uc), opts);
  const SimResult via_copy = simulate(sys.restrict_to(uc), opts);
  expect_same(via_view, via_copy);
}

}  // namespace
}  // namespace procon::sim
