#include "platform/heterogeneous.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "prob/estimator.h"
#include "sim/simulator.h"

namespace procon::platform {
namespace {

using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;

constexpr NodeType kRisc = 0;
constexpr NodeType kDsp = 1;

/// Two-type platform: nodes 0..1 RISC, node 2 DSP.
Platform mixed_platform() {
  Platform p;
  p.add_node("risc0", kRisc);
  p.add_node("risc1", kRisc);
  p.add_node("dsp0", kDsp);
  return p;
}

System mixed_system() {
  std::vector<sdf::Graph> apps{fig2_graph_a(), fig2_graph_b()};
  Platform plat = mixed_platform();
  Mapping map = Mapping::by_index(apps, plat);
  return System(std::move(apps), std::move(plat), std::move(map));
}

TEST(PlatformTypes, DefaultTypeIsZero) {
  const Platform p = Platform::homogeneous(3);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(p.node(n).type, 0u);
  }
  EXPECT_EQ(p.type_count(), 1u);
}

TEST(PlatformTypes, TypeCountTracksMaxType) {
  EXPECT_EQ(mixed_platform().type_count(), 2u);
  Platform p;
  EXPECT_EQ(p.type_count(), 0u);
  p.add_node("x", 5);
  EXPECT_EQ(p.type_count(), 6u);
}

TEST(HeterogeneousTiming, DefaultsToGraphTimes) {
  const System sys = mixed_system();
  const HeterogeneousTiming timing(sys.apps(), 2);
  const System applied = timing.apply(sys);
  for (sdf::AppId i = 0; i < sys.app_count(); ++i) {
    for (sdf::ActorId a = 0; a < sys.app(i).actor_count(); ++a) {
      EXPECT_EQ(applied.app(i).actor(a).exec_time, sys.app(i).actor(a).exec_time);
    }
  }
}

TEST(HeterogeneousTiming, AppliesTypeSpecificTimes) {
  const System sys = mixed_system();
  HeterogeneousTiming timing(sys.apps(), 2);
  // a2 and b2 live on the DSP (node 2): both run 4x faster there.
  timing.set(0, 2, kDsp, 25);
  timing.set(1, 2, kDsp, 25);
  // A DSP time for an actor NOT mapped to a DSP must not leak.
  timing.set(0, 0, kDsp, 1);
  const System applied = timing.apply(sys);
  EXPECT_EQ(applied.app(0).actor(2).exec_time, 25);
  EXPECT_EQ(applied.app(1).actor(2).exec_time, 25);
  EXPECT_EQ(applied.app(0).actor(0).exec_time, 100);  // still on RISC
}

TEST(HeterogeneousTiming, FasterNodeImprovesEstimatedPeriod) {
  const System sys = mixed_system();
  HeterogeneousTiming timing(sys.apps(), 2);
  timing.set(0, 2, kDsp, 25);
  timing.set(1, 2, kDsp, 25);
  const System fast = timing.apply(sys);

  const auto base = prob::ContentionEstimator().estimate(sys);
  const auto accel = prob::ContentionEstimator().estimate(fast);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_LT(accel[i].isolation_period, base[i].isolation_period);
    EXPECT_LT(accel[i].estimated_period, base[i].estimated_period);
  }
  // And the whole pipeline still simulates.
  const auto sim = sim::simulate(fast, sim::SimOptions{.horizon = 60'000});
  ASSERT_TRUE(sim.apps[0].converged);
  EXPECT_LT(sim.apps[0].average_period, 300.0);
}

TEST(HeterogeneousTiming, GetFallsBackToBase) {
  const System sys = mixed_system();
  HeterogeneousTiming timing(sys.apps(), 2);
  EXPECT_EQ(timing.get(0, 0, kDsp, 123), 123);
  timing.set(0, 0, kDsp, 7);
  EXPECT_EQ(timing.get(0, 0, kDsp, 123), 7);
  EXPECT_EQ(timing.get(0, 0, kRisc, 123), 123);  // other type untouched
}

TEST(HeterogeneousTiming, ValidationErrors) {
  const System sys = mixed_system();
  EXPECT_THROW(HeterogeneousTiming(sys.apps(), 0), std::invalid_argument);
  HeterogeneousTiming timing(sys.apps(), 2);
  EXPECT_THROW(timing.set(9, 0, 0, 1), std::out_of_range);
  EXPECT_THROW(timing.set(0, 9, 0, 1), std::out_of_range);
  EXPECT_THROW(timing.set(0, 0, 9, 1), std::out_of_range);
  EXPECT_THROW(timing.set(0, 0, 0, -1), sdf::GraphError);
  EXPECT_THROW((void)timing.get(0, 0, 9, 1), std::out_of_range);

  // Platform with more types than the table knows.
  Platform plat;
  plat.add_node("exotic", 7);
  std::vector<sdf::Graph> apps{procon::testing::two_actor_cycle(1, 1)};
  Mapping m(apps);
  m.assign(0, 0, 0);
  m.assign(0, 1, 0);
  const System exotic(std::move(apps), std::move(plat), std::move(m));
  HeterogeneousTiming small(exotic.apps(), 2);
  EXPECT_THROW((void)small.apply(exotic), sdf::GraphError);
}

TEST(HeterogeneousTiming, RemappingChangesEffectiveTimes) {
  // The same timing table yields different graphs under different mappings:
  // the actor inherits the time of whatever node type it lands on.
  std::vector<sdf::Graph> apps{procon::testing::two_actor_cycle(100, 100)};
  Platform plat;
  plat.add_node("risc", kRisc);
  plat.add_node("dsp", kDsp);
  HeterogeneousTiming timing(apps, 2);
  timing.set(0, 0, kDsp, 10);

  Mapping on_risc(apps);
  on_risc.assign(0, 0, 0);
  on_risc.assign(0, 1, 0);
  Mapping on_dsp(apps);
  on_dsp.assign(0, 0, 1);
  on_dsp.assign(0, 1, 0);

  const System sys_risc(std::vector<sdf::Graph>(apps), plat, on_risc);
  const System sys_dsp(std::vector<sdf::Graph>(apps), plat, on_dsp);
  EXPECT_EQ(timing.apply(sys_risc).app(0).actor(0).exec_time, 100);
  EXPECT_EQ(timing.apply(sys_dsp).app(0).actor(0).exec_time, 10);
}

}  // namespace
}  // namespace procon::platform
