#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace procon::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, NegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -3);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -3);
  }
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanApprox) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Rng, SplitIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream should not equal the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace procon::util
