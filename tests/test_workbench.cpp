// The Workbench session contract: every query is bitwise identical to the
// legacy free function it replaces (the session caches structure, never
// changes results), queries are history-independent (cold start at every
// query boundary), and the sharded queries return the same bits for any
// thread count.
#include "api/workbench.h"

#include <gtest/gtest.h>

#include "analysis/latency.h"
#include "analysis/throughput.h"
#include "dse/buffer_explorer.h"
#include "dse/mapper.h"
#include "gen/graph_generator.h"
#include "gen/use_cases.h"
#include "helpers.h"
#include "prob/estimator.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "wcrt/wcrt.h"

namespace procon::api {
namespace {

using procon::testing::fig2_system;

platform::System random_system(std::uint64_t seed, std::size_t apps) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 7;
  auto graphs = gen::generate_graphs(rng, gopts, apps);
  std::size_t max_actors = 0;
  for (const auto& g : graphs) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(graphs, plat);
  return platform::System(std::move(graphs), std::move(plat), std::move(map));
}

void expect_estimates_equal(const std::vector<prob::AppEstimate>& a,
                            const std::vector<prob::AppEstimate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].isolation_period, b[i].isolation_period);
    EXPECT_EQ(a[i].estimated_period, b[i].estimated_period);
    ASSERT_EQ(a[i].actors.size(), b[i].actors.size());
    for (std::size_t j = 0; j < a[i].actors.size(); ++j) {
      EXPECT_EQ(a[i].actors[j].waiting_time, b[i].actors[j].waiting_time);
      EXPECT_EQ(a[i].actors[j].response_time, b[i].actors[j].response_time);
    }
  }
}

TEST(Workbench, ThroughputMatchesComputePeriodBitwise) {
  Workbench wb(fig2_system(), WorkbenchOptions{.threads = 1});
  for (sdf::AppId i = 0; i < wb.app_count(); ++i) {
    const auto fresh = analysis::compute_period(wb.system().app(i));
    const auto report = wb.throughput(i);
    EXPECT_EQ(report->deadlocked, fresh.deadlocked);
    EXPECT_EQ(report->period, fresh.period);
    // A second query must return the same bits (no history dependence).
    EXPECT_EQ(wb.throughput(i)->period, fresh.period);
  }
}

TEST(Workbench, LatencyAndBottleneckMatchFreeFunctions) {
  Workbench wb(fig2_system(), WorkbenchOptions{.threads = 1});
  for (sdf::AppId i = 0; i < wb.app_count(); ++i) {
    const auto lat = analysis::compute_latency(wb.system().app(i));
    const auto wl = wb.latency(i);
    EXPECT_EQ(wl->latency, lat.latency);
    EXPECT_EQ(wl->critical_actors, lat.critical_actors);

    const auto bn = analysis::find_bottleneck(wb.system().app(i));
    const auto wbn = wb.bottleneck(i);
    EXPECT_EQ(wbn->deadlocked, bn.deadlocked);
    EXPECT_EQ(wbn->period, bn.period);
    EXPECT_EQ(wbn->actors, bn.actors);
  }
}

TEST(Workbench, ContentionMatchesEstimatorBitwise) {
  for (const auto method :
       {prob::Method::SecondOrder, prob::Method::FourthOrder, prob::Method::Exact,
        prob::Method::Composability, prob::Method::CompositionInverse}) {
    const prob::EstimatorOptions opts{.method = method};
    Workbench wb(fig2_system(), WorkbenchOptions{.threads = 1});
    const auto legacy = prob::ContentionEstimator(opts).estimate(wb.system());
    expect_estimates_equal(*wb.contention(opts), legacy);
    // Query order must not matter: repeat after other queries ran.
    (void)wb.wcrt();
    (void)wb.throughput(0);
    expect_estimates_equal(*wb.contention(opts), legacy);
  }
}

TEST(Workbench, ContentionMatchesOnRandomisedSystems) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    Workbench wb(random_system(seed, 4), WorkbenchOptions{.threads = 1});
    const auto legacy = prob::ContentionEstimator().estimate(wb.system());
    expect_estimates_equal(*wb.contention(), legacy);
  }
}

TEST(Workbench, RestrictedContentionMatchesRestrictedSystem) {
  Workbench wb(random_system(7, 4), WorkbenchOptions{.threads = 1});
  for (const auto& uc : gen::all_use_cases(wb.app_count())) {
    const auto legacy =
        prob::ContentionEstimator().estimate(wb.system().restrict_to(uc));
    expect_estimates_equal(*wb.contention(uc), legacy);
  }
}

TEST(Workbench, WcrtMatchesWorstCaseBoundsBitwise) {
  for (const auto policy :
       {wcrt::Policy::RoundRobinNonPreemptive, wcrt::Policy::TdmaPreemptive}) {
    const wcrt::WcrtOptions opts{.policy = policy};
    Workbench wb(fig2_system(), WorkbenchOptions{.threads = 1});
    const auto legacy = wcrt::worst_case_bounds(wb.system(), opts);
    const auto report = wb.wcrt(opts);
    ASSERT_EQ(report->size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ((*report)[i].isolation_period, legacy[i].isolation_period);
      EXPECT_EQ((*report)[i].worst_case_period, legacy[i].worst_case_period);
    }
  }
}

TEST(Workbench, SimulateMatchesSimulatorBitwise) {
  Workbench wb(fig2_system(), WorkbenchOptions{.threads = 1});
  const sim::SimOptions opts{.horizon = 100'000};
  const auto legacy = sim::simulate(wb.system(), opts);
  const auto report = wb.simulate(opts);
  ASSERT_EQ(report->apps.size(), legacy.apps.size());
  for (std::size_t i = 0; i < legacy.apps.size(); ++i) {
    EXPECT_EQ(report->apps[i].iterations, legacy.apps[i].iterations);
    EXPECT_EQ(report->apps[i].average_period, legacy.apps[i].average_period);
    EXPECT_EQ(report->apps[i].worst_period, legacy.apps[i].worst_period);
  }
  EXPECT_EQ(report->events_processed, legacy.events_processed);
}

TEST(Workbench, BufferFrontierMatchesExplorerBothPaths) {
  Workbench wb(random_system(5, 3), WorkbenchOptions{.threads = 1});
  for (sdf::AppId i = 0; i < wb.app_count(); ++i) {
    dse::BufferExplorerOptions reference_opts;
    reference_opts.incremental = false;
    const auto reference =
        dse::explore_buffer_tradeoff(wb.system().app(i), reference_opts);
    const auto incremental = wb.buffer_frontier(i);  // incremental by default
    ASSERT_EQ(incremental->points.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      EXPECT_EQ(incremental->points[k].capacities, reference[k].capacities);
      EXPECT_EQ(incremental->points[k].total_tokens, reference[k].total_tokens);
      EXPECT_EQ(incremental->points[k].period, reference[k].period);
    }
  }
}

TEST(Workbench, SweepIsThreadCountInvariant) {
  const auto sys = random_system(42, 5);
  const auto use_cases = gen::all_use_cases(sys.app_count());

  Workbench one(sys, WorkbenchOptions{.threads = 1});
  Workbench four(sys, WorkbenchOptions{.threads = 4});
  SweepOptions opts;
  opts.with_wcrt = true;
  const auto a = one.sweep_use_cases(use_cases, opts);
  const auto b = four.sweep_use_cases(use_cases, opts);

  ASSERT_EQ(a->size(), b->size());
  ASSERT_EQ(a->size(), use_cases.size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].use_case, use_cases[i]);  // deterministic result order
    expect_estimates_equal((*a)[i].estimates, (*b)[i].estimates);
    ASSERT_EQ((*a)[i].bounds.size(), (*b)[i].bounds.size());
    for (std::size_t j = 0; j < (*a)[i].bounds.size(); ++j) {
      EXPECT_EQ((*a)[i].bounds[j].worst_case_period,
                (*b)[i].bounds[j].worst_case_period);
    }
  }
}

TEST(Workbench, SweepMatchesPerUseCaseLegacyEstimates) {
  const auto sys = random_system(9, 4);
  const auto use_cases = gen::all_use_cases(sys.app_count());
  Workbench wb(sys, WorkbenchOptions{.threads = 3});
  const auto swept = wb.sweep_use_cases(use_cases);
  ASSERT_EQ(swept->size(), use_cases.size());
  for (std::size_t i = 0; i < use_cases.size(); ++i) {
    const auto legacy =
        prob::ContentionEstimator().estimate(sys.restrict_to(use_cases[i]));
    expect_estimates_equal((*swept)[i].estimates, legacy);
  }
}

TEST(Workbench, ScoreMappingsMatchesEvaluateMapping) {
  const auto sys = random_system(3, 3);
  util::Rng rng(17);
  std::vector<platform::Mapping> candidates;
  for (int k = 0; k < 8; ++k) {
    candidates.push_back(
        platform::Mapping::random(sys.apps(), sys.platform(), rng));
  }
  Workbench wb(sys, WorkbenchOptions{.threads = 2});
  const auto scores = wb.score_mappings(candidates);
  ASSERT_EQ(scores->size(), candidates.size());
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    EXPECT_EQ((*scores)[k], dse::evaluate_mapping(sys.apps(), sys.platform(),
                                                  candidates[k]));
  }
}

TEST(Workbench, OptimiseMappingIsThreadCountInvariant) {
  const auto sys = random_system(21, 3);
  dse::MapperOptions opts;
  opts.iterations = 250;
  opts.seed = 5;

  Workbench one(sys, WorkbenchOptions{.threads = 1});
  Workbench four(sys, WorkbenchOptions{.threads = 4});
  const auto a = one.optimise_mapping(opts);
  const auto b = four.optimise_mapping(opts);

  EXPECT_EQ(a->score, b->score);
  EXPECT_EQ(a->initial_score, b->initial_score);
  EXPECT_EQ(a->evaluations, b->evaluations);
  EXPECT_EQ(a->accepted_moves, b->accepted_moves);
  for (sdf::AppId i = 0; i < sys.app_count(); ++i) {
    for (sdf::ActorId act = 0; act < sys.app(i).actor_count(); ++act) {
      EXPECT_EQ(a->mapping.node_of(i, act), b->mapping.node_of(i, act));
    }
  }
  // And equals the free-function entry point from the same start.
  const auto legacy =
      dse::optimise_mapping(sys.apps(), sys.platform(), sys.mapping(), opts);
  EXPECT_EQ(a->score, legacy.score);
  EXPECT_EQ(a->accepted_moves, legacy.accepted_moves);
}

TEST(Workbench, InvalidQueriesThrow) {
  Workbench wb(fig2_system(), WorkbenchOptions{.threads = 1});
  EXPECT_THROW((void)wb.throughput(99), sdf::GraphError);
  EXPECT_THROW((void)wb.latency(99), sdf::GraphError);
  const platform::UseCase bogus{0, 99};
  EXPECT_THROW((void)wb.contention(bogus), std::exception);
}

TEST(Workbench, ProvenanceIsFilledIn) {
  Workbench wb(fig2_system(), WorkbenchOptions{.threads = 2});
  const auto est = wb.contention();
  EXPECT_FALSE(est.provenance.method.empty());
  EXPECT_GE(est.provenance.wall_ms, 0.0);
  const auto swept = wb.sweep_all_use_cases();
  EXPECT_EQ(swept.provenance.evaluations, 3u);  // 2^2 - 1 use-cases
  EXPECT_EQ(swept.provenance.threads, 2u);
}

}  // namespace
}  // namespace procon::api
