#include <gtest/gtest.h>

#include "helpers.h"
#include "platform/mapping.h"
#include "platform/platform.h"
#include "platform/system.h"
#include "util/rng.h"

namespace procon::platform {
namespace {

TEST(Platform, Homogeneous) {
  const Platform p = Platform::homogeneous(3, "P");
  EXPECT_EQ(p.node_count(), 3u);
  EXPECT_EQ(p.node(0).name, "P0");
  EXPECT_EQ(p.node(2).name, "P2");
  EXPECT_EQ(p.find_node("P1"), 1u);
  EXPECT_EQ(p.find_node("missing"), kInvalidNode);
}

TEST(Platform, InvalidNodeThrows) {
  const Platform p = Platform::homogeneous(1);
  EXPECT_THROW((void)p.node(5), std::out_of_range);
}

TEST(Mapping, ByIndexMatchesPaperSetup) {
  const std::vector<sdf::Graph> apps{procon::testing::fig2_graph_a(),
                                     procon::testing::fig2_graph_b()};
  const Platform plat = Platform::homogeneous(3);
  const Mapping m = Mapping::by_index(apps, plat);
  EXPECT_TRUE(m.is_complete());
  for (sdf::AppId app = 0; app < 2; ++app) {
    for (sdf::ActorId a = 0; a < 3; ++a) {
      EXPECT_EQ(m.node_of(app, a), a);
    }
  }
  // Node 1 hosts a1 and b1.
  const auto on1 = m.actors_on(1);
  ASSERT_EQ(on1.size(), 2u);
  EXPECT_EQ(on1[0].app, 0u);
  EXPECT_EQ(on1[0].actor, 1u);
  EXPECT_EQ(on1[1].app, 1u);
  EXPECT_EQ(on1[1].actor, 1u);
}

TEST(Mapping, ByIndexNeedsEnoughNodes) {
  const std::vector<sdf::Graph> apps{procon::testing::fig2_graph_a()};
  const Platform tiny = Platform::homogeneous(2);
  EXPECT_THROW(Mapping::by_index(apps, tiny), std::out_of_range);
}

TEST(Mapping, RandomIsCompleteAndInRange) {
  const std::vector<sdf::Graph> apps{procon::testing::fig2_graph_a(),
                                     procon::testing::fig2_graph_b()};
  const Platform plat = Platform::homogeneous(4);
  util::Rng rng(5);
  const Mapping m = Mapping::random(apps, plat, rng);
  EXPECT_TRUE(m.is_complete());
  for (sdf::AppId app = 0; app < 2; ++app) {
    for (sdf::ActorId a = 0; a < 3; ++a) {
      EXPECT_LT(m.node_of(app, a), 4u);
    }
  }
}

TEST(Mapping, LoadBalancedSpreadsWork) {
  const std::vector<sdf::Graph> apps{procon::testing::fig2_graph_a()};
  const Platform plat = Platform::homogeneous(3);
  const Mapping m = Mapping::load_balanced(apps, plat);
  EXPECT_TRUE(m.is_complete());
  // Three actors with equal q*tau = 100 onto three nodes: one each.
  std::vector<int> count(3, 0);
  for (sdf::ActorId a = 0; a < 3; ++a) ++count[m.node_of(0, a)];
  EXPECT_EQ(count, (std::vector<int>{1, 1, 1}));
}

TEST(Mapping, IncompleteDetected) {
  const std::vector<sdf::Graph> apps{procon::testing::fig2_graph_a()};
  Mapping m(apps);
  EXPECT_FALSE(m.is_complete());
  m.assign(0, 0, 0);
  m.assign(0, 1, 0);
  EXPECT_FALSE(m.is_complete());
  m.assign(0, 2, 1);
  EXPECT_TRUE(m.is_complete());
}

TEST(Mapping, InvalidAssignThrows) {
  const std::vector<sdf::Graph> apps{procon::testing::fig2_graph_a()};
  Mapping m(apps);
  EXPECT_THROW(m.assign(1, 0, 0), std::out_of_range);
  EXPECT_THROW(m.assign(0, 9, 0), std::out_of_range);
  EXPECT_THROW((void)m.node_of(0, 9), std::out_of_range);
}

TEST(System, ValidatesCleanSystem) {
  const System sys = procon::testing::fig2_system();
  EXPECT_NO_THROW(sys.validate());
  EXPECT_EQ(sys.app_count(), 2u);
  EXPECT_EQ(sys.app(0).name(), "A");
}

TEST(System, RestrictToSubset) {
  const System sys = procon::testing::fig2_system();
  const System sub = sys.restrict_to({1});
  EXPECT_EQ(sub.app_count(), 1u);
  EXPECT_EQ(sub.app(0).name(), "B");
  // Mapping entries survive re-indexing.
  for (sdf::ActorId a = 0; a < 3; ++a) {
    EXPECT_EQ(sub.mapping().node_of(0, a), a);
  }
  EXPECT_NO_THROW(sub.validate());
}

TEST(System, FullUseCase) {
  const System sys = procon::testing::fig2_system();
  EXPECT_EQ(sys.full_use_case(), (UseCase{0, 1}));
}

TEST(System, RestrictToInvalidAppThrows) {
  const System sys = procon::testing::fig2_system();
  EXPECT_THROW((void)sys.restrict_to({7}), std::out_of_range);
}

TEST(System, ValidateRejectsIncompleteMapping) {
  std::vector<sdf::Graph> apps{procon::testing::fig2_graph_a()};
  Platform plat = Platform::homogeneous(3);
  Mapping m(apps);  // nothing assigned
  const System sys(std::move(apps), std::move(plat), std::move(m));
  EXPECT_THROW(sys.validate(), sdf::GraphError);
}

TEST(System, ValidateRejectsDeadlockedApp) {
  sdf::Graph g("dead");
  const auto x = g.add_actor("x", 1);
  const auto y = g.add_actor("y", 1);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 0);
  std::vector<sdf::Graph> apps{g};
  Platform plat = Platform::homogeneous(2);
  Mapping m = Mapping::by_index(apps, plat);
  const System sys(std::move(apps), std::move(plat), std::move(m));
  EXPECT_THROW(sys.validate(), sdf::GraphError);
}

}  // namespace
}  // namespace procon::platform
