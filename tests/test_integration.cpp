// End-to-end integration tests: the full pipeline from generated workload
// through estimation and simulation, checking the paper's qualitative
// claims on small instances (the bench harnesses check the full-size ones).
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/graph_generator.h"
#include "gen/use_cases.h"
#include "helpers.h"
#include "prob/estimator.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "wcrt/wcrt.h"

namespace procon {
namespace {

using platform::Mapping;
using platform::Platform;
using platform::System;

System make_system(std::vector<sdf::Graph> apps) {
  std::size_t max_actors = 0;
  for (const auto& g : apps) max_actors = std::max(max_actors, g.actor_count());
  Platform plat = Platform::homogeneous(max_actors);
  Mapping map = Mapping::by_index(apps, plat);
  return System(std::move(apps), std::move(plat), std::move(map));
}

class WorkloadIntegration : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<sdf::Graph> workload() {
    util::Rng rng(GetParam());
    gen::GeneratorOptions opts;
    opts.min_actors = 5;
    opts.max_actors = 7;
    opts.max_repetition = 3;
    opts.min_exec_time = 10;
    opts.max_exec_time = 80;
    return gen::generate_graphs(rng, opts, 4);
  }
};

TEST_P(WorkloadIntegration, EstimatesWithinReasonOfSimulation) {
  const System sys = make_system(workload());
  const auto sim = sim::simulate(sys, sim::SimOptions{.horizon = 300'000});
  const auto est = prob::ContentionEstimator(
                       prob::EstimatorOptions{.method = prob::Method::SecondOrder})
                       .estimate(sys);
  for (std::size_t i = 0; i < est.size(); ++i) {
    ASSERT_TRUE(sim.apps[i].converged) << "seed=" << GetParam();
    // The paper reports probabilistic estimates mostly within ~20% of
    // simulation; allow generous slack (50%) on arbitrary small seeds so
    // the suite stays robust while still catching gross regressions.
    const double err = util::percent_abs_diff(est[i].estimated_period,
                                              sim.apps[i].average_period);
    EXPECT_LT(err, 50.0) << "seed=" << GetParam() << " app=" << i
                         << " est=" << est[i].estimated_period
                         << " sim=" << sim.apps[i].average_period;
  }
}

TEST_P(WorkloadIntegration, WcrtDominatesSimulationAndEstimates) {
  const System sys = make_system(workload());
  const auto sim = sim::simulate(sys, sim::SimOptions{.horizon = 300'000});
  const auto wc = wcrt::worst_case_bounds(sys);
  const auto est = prob::ContentionEstimator().estimate(sys);
  for (std::size_t i = 0; i < wc.size(); ++i) {
    // The analysed worst case must not be beaten by the simulated average
    // (FCFS simulation can only be better than all-others-queued-first).
    EXPECT_GE(wc[i].worst_case_period * (1.0 + 1e-9),
              sim.apps[i].average_period)
        << "seed=" << GetParam() << " app=" << i;
    EXPECT_GE(wc[i].worst_case_period + 1e-9, est[i].estimated_period);
  }
}

TEST_P(WorkloadIntegration, MethodOrderingHolds) {
  // 2nd order >= 4th order >= exact, per the truncation-error analysis;
  // periods inherit the ordering monotonically.
  const System sys = make_system(workload());
  const auto second = prob::ContentionEstimator(
                          prob::EstimatorOptions{.method = prob::Method::SecondOrder})
                          .estimate(sys);
  const auto fourth = prob::ContentionEstimator(
                          prob::EstimatorOptions{.method = prob::Method::FourthOrder})
                          .estimate(sys);
  const auto exact = prob::ContentionEstimator(
                         prob::EstimatorOptions{.method = prob::Method::Exact})
                         .estimate(sys);
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_GE(second[i].estimated_period + 1e-9, fourth[i].estimated_period);
    EXPECT_GE(fourth[i].estimated_period + 1e-9, exact[i].estimated_period);
    EXPECT_GE(exact[i].estimated_period + 1e-9, exact[i].isolation_period);
  }
}

TEST_P(WorkloadIntegration, CompositionInverseMatchesDirectComposability) {
  // The O(n) inverse-based evaluation must track the direct fold closely
  // ((x) is associative to second order; differences are third-order).
  const System sys = make_system(workload());
  const auto direct = prob::ContentionEstimator(
                          prob::EstimatorOptions{.method = prob::Method::Composability})
                          .estimate(sys);
  const auto inverse = prob::ContentionEstimator(
                           prob::EstimatorOptions{.method = prob::Method::CompositionInverse})
                           .estimate(sys);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(inverse[i].estimated_period, direct[i].estimated_period,
                0.10 * direct[i].estimated_period)
        << "seed=" << GetParam() << " app=" << i;
  }
}

TEST_P(WorkloadIntegration, SingleAppUseCasesExact) {
  // With one application active there is no contention: every method and
  // the simulator agree with the isolation period (the zero-inaccuracy
  // point of Fig. 6).
  const auto apps = workload();
  for (std::size_t k = 0; k < apps.size(); ++k) {
    const System sys = make_system({apps[k]});
    const auto est = prob::ContentionEstimator().estimate(sys);
    const auto sim = sim::simulate(sys, sim::SimOptions{.horizon = 200'000});
    ASSERT_TRUE(sim.apps[0].converged);
    EXPECT_NEAR(est[0].estimated_period, est[0].isolation_period, 1e-9);
    EXPECT_NEAR(sim.apps[0].average_period, est[0].isolation_period,
                1e-6 * est[0].isolation_period)
        << "seed=" << GetParam() << " app=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadIntegration,
                         ::testing::Values(11, 22, 33));

TEST(Integration, MoreAppsMeanMorePredictedContention) {
  // Adding applications to a use-case must not decrease any estimate.
  util::Rng rng(99);
  gen::GeneratorOptions opts;
  opts.min_actors = 5;
  opts.max_actors = 6;
  auto apps = gen::generate_graphs(rng, opts, 4);
  double last = 0.0;
  for (std::size_t k = 1; k <= apps.size(); ++k) {
    std::vector<sdf::Graph> subset(apps.begin(), apps.begin() + k);
    const System sys = make_system(std::move(subset));
    const auto est = prob::ContentionEstimator().estimate(sys);
    EXPECT_GE(est[0].estimated_period + 1e-9, last);
    last = est[0].estimated_period;
  }
}

TEST(Integration, UseCaseRestrictionConsistent) {
  // Estimating a restricted system equals estimating those apps directly.
  const auto sys = testing::fig2_system();
  const auto full = prob::ContentionEstimator().estimate(sys);
  const auto only_a = prob::ContentionEstimator().estimate(sys.restrict_to({0}));
  EXPECT_NEAR(only_a[0].isolation_period, full[0].isolation_period, 1e-12);
  EXPECT_LE(only_a[0].estimated_period, full[0].estimated_period);
}

}  // namespace
}  // namespace procon
