#include "sim/trace_export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "helpers.h"
#include "sim/simulator.h"

namespace procon::sim {
namespace {

using procon::testing::fig2_system;

SimResult traced_run(sdf::Time horizon = 5'000) {
  SimOptions opts{.horizon = horizon};
  opts.collect_trace = true;
  return simulate(fig2_system(), opts);
}

TEST(Vcd, HeaderAndSignals) {
  const auto sys = fig2_system();
  const std::string vcd = to_vcd(sys, traced_run());
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // One signal per node.
  EXPECT_NE(vcd.find("Proc0"), std::string::npos);
  EXPECT_NE(vcd.find("Proc1"), std::string::npos);
  EXPECT_NE(vcd.find("Proc2"), std::string::npos);
}

TEST(Vcd, EmptyTraceStillValid) {
  const auto sys = fig2_system();
  const auto r = simulate(sys, SimOptions{.horizon = 5'000});  // no trace
  const std::string vcd = to_vcd(sys, r);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // Initial idle values and final timestamp exist.
  EXPECT_NE(vcd.find("b0000000000000000"), std::string::npos);
  EXPECT_NE(vcd.find("#5000"), std::string::npos);
}

TEST(Vcd, TimestampsMonotone) {
  const auto sys = fig2_system();
  const std::string vcd = to_vcd(sys, traced_run());
  std::istringstream is(vcd);
  std::string line;
  long long last = -1;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') {
      const long long t = std::stoll(line.substr(1));
      EXPECT_GE(t, last);
      last = t;
    }
  }
  EXPECT_GE(last, 0);
}

TEST(Vcd, ValueChangesParseable) {
  const auto sys = fig2_system();
  const std::string vcd = to_vcd(sys, traced_run());
  std::istringstream is(vcd);
  std::string line;
  std::size_t changes = 0;
  bool in_body = false;
  while (std::getline(is, line)) {
    if (line.find("$enddefinitions") != std::string::npos) {
      in_body = true;
      continue;
    }
    if (!in_body || line.empty()) continue;
    if (line[0] == 'b') {
      // "b<16 bits> <id>"
      ASSERT_GE(line.size(), 18u);
      for (std::size_t i = 1; i <= 16; ++i) {
        ASSERT_TRUE(line[i] == '0' || line[i] == '1') << line;
      }
      ++changes;
    }
  }
  EXPECT_GT(changes, 10u);  // plenty of activity in 5000 time units
}

TEST(Gantt, ShowsActivityAndIdle) {
  const auto sys = fig2_system();
  const auto r = traced_run();
  const std::string gantt = render_gantt(sys, r, 0, 1200, 60);
  // Three node rows plus a header line.
  EXPECT_EQ(std::count(gantt.begin(), gantt.end(), '\n'), 4);
  EXPECT_NE(gantt.find("Proc0"), std::string::npos);
  // Both applications (letters A and B, any case) appear somewhere.
  const bool has_a = gantt.find('A') != std::string::npos ||
                     gantt.find('a') != std::string::npos;
  const bool has_b = gantt.find('B') != std::string::npos ||
                     gantt.find('b') != std::string::npos;
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
}

TEST(Gantt, EmptyWindowThrows) {
  const auto sys = fig2_system();
  const auto r = traced_run();
  EXPECT_THROW((void)render_gantt(sys, r, 100, 100, 60), std::invalid_argument);
  EXPECT_THROW((void)render_gantt(sys, r, 0, 100, 0), std::invalid_argument);
}

TEST(Gantt, IdleOnlyWindowRendersDots) {
  const auto sys = fig2_system();
  SimResult empty;
  empty.horizon = 100;
  const std::string gantt = render_gantt(sys, empty, 0, 100, 20);
  EXPECT_NE(gantt.find("...."), std::string::npos);
  EXPECT_EQ(gantt.find('A'), std::string::npos);
}

}  // namespace
}  // namespace procon::sim
