#include "dse/buffer_explorer.h"

#include <gtest/gtest.h>

#include "analysis/throughput.h"
#include "gen/graph_generator.h"
#include "helpers.h"
#include "util/rng.h"

namespace procon::dse {
namespace {

TEST(BufferExplorer, PipelineStaircase) {
  // Two-stage pipeline with ample feedback: unbounded period 10; the
  // minimal buffer forces alternation (20). The frontier must walk from 20
  // down to 10.
  sdf::Graph g("pipe");
  const auto x = g.add_actor("x", 10);
  const auto y = g.add_actor("y", 10);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 4);
  const auto frontier = explore_buffer_tradeoff(g);
  ASSERT_GE(frontier.size(), 2u);
  EXPECT_NEAR(frontier.front().period, 20.0, 1e-6);
  EXPECT_NEAR(frontier.back().period, 10.0, 1e-6);
}

TEST(BufferExplorer, FrontierIsMonotone) {
  sdf::Graph g("pipe3");
  const auto a = g.add_actor("a", 5);
  const auto b = g.add_actor("b", 7);
  const auto c = g.add_actor("c", 9);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, c, 1, 1, 0);
  g.add_channel(c, a, 1, 1, 6);
  const auto frontier = explore_buffer_tradeoff(g);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LT(frontier[i].period, frontier[i - 1].period + 1e-12);
    EXPECT_GT(frontier[i].total_tokens, frontier[i - 1].total_tokens);
  }
}

TEST(BufferExplorer, ReachesUnboundedPerformance) {
  sdf::Graph g("pipe3");
  const auto a = g.add_actor("a", 5);
  const auto b = g.add_actor("b", 7);
  const auto c = g.add_actor("c", 9);
  g.add_channel(a, b, 1, 1, 0);
  g.add_channel(b, c, 1, 1, 0);
  g.add_channel(c, a, 1, 1, 6);
  const double unbounded = analysis::compute_period(g).period;
  const auto frontier = explore_buffer_tradeoff(g);
  EXPECT_NEAR(frontier.back().period, unbounded, 1e-6);
}

TEST(BufferExplorer, SequentialGraphIsOnePoint) {
  // Fig. 2 graph A is fully sequential: buffers beyond minimal cannot help,
  // so the frontier collapses to the minimal configuration.
  const auto frontier =
      explore_buffer_tradeoff(procon::testing::fig2_graph_a());
  ASSERT_FALSE(frontier.empty());
  EXPECT_NEAR(frontier.front().period, 300.0, 1e-6);
  EXPECT_NEAR(frontier.back().period, 300.0, 1e-6);
  EXPECT_LE(frontier.size(), 2u);
}

TEST(BufferExplorer, StepCapRespected) {
  sdf::Graph g("pipe");
  const auto x = g.add_actor("x", 10);
  const auto y = g.add_actor("y", 10);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 8);
  BufferExplorerOptions opts;
  opts.max_steps = 1;
  const auto frontier = explore_buffer_tradeoff(g, opts);
  EXPECT_LE(frontier.size(), 2u);
}

// Property: on generated graphs the frontier is a valid Pareto staircase
// ending at (near) the unbounded period.
class BufferExplorerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferExplorerProperty, ValidStaircase) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions gopts;
  gopts.min_actors = 4;
  gopts.max_actors = 6;
  gopts.max_repetition = 2;
  const sdf::Graph g = gen::generate_graph(rng, gopts, "rnd");
  const double unbounded = analysis::compute_period(g).period;
  const auto frontier = explore_buffer_tradeoff(g);
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LT(frontier[i].period, frontier[i - 1].period + 1e-9);
    EXPECT_GE(frontier[i].total_tokens, frontier[i - 1].total_tokens);
  }
  EXPECT_GE(frontier.back().period, unbounded - 1e-6);
  EXPECT_LE(frontier.back().period, unbounded * 1.001 + 1e-6)
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferExplorerProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace procon::dse
