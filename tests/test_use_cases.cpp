#include "gen/use_cases.h"

#include <gtest/gtest.h>

#include <set>

namespace procon::gen {
namespace {

TEST(UseCases, CountIsTwoToTheNMinusOne) {
  EXPECT_EQ(all_use_cases(1).size(), 1u);
  EXPECT_EQ(all_use_cases(3).size(), 7u);
  EXPECT_EQ(all_use_cases(10).size(), 1023u);  // the paper's "over a thousand"
}

TEST(UseCases, AllUnique) {
  const auto ucs = all_use_cases(6);
  std::set<platform::UseCase> s(ucs.begin(), ucs.end());
  EXPECT_EQ(s.size(), ucs.size());
}

TEST(UseCases, SortedByCardinality) {
  const auto ucs = all_use_cases(4);
  std::size_t last = 1;
  for (const auto& uc : ucs) {
    EXPECT_GE(uc.size(), last);
    last = uc.size();
  }
  EXPECT_EQ(ucs.front().size(), 1u);
  EXPECT_EQ(ucs.back().size(), 4u);
}

TEST(UseCases, ElementsSortedAndUnique) {
  for (const auto& uc : all_use_cases(5)) {
    for (std::size_t i = 1; i < uc.size(); ++i) {
      EXPECT_LT(uc[i - 1], uc[i]);
    }
    for (const auto id : uc) {
      EXPECT_LT(id, 5u);
    }
  }
}

TEST(UseCases, OfSizeMatchesBinomial) {
  EXPECT_EQ(use_cases_of_size(5, 2).size(), 10u);
  EXPECT_EQ(use_cases_of_size(5, 5).size(), 1u);
  EXPECT_EQ(use_cases_of_size(5, 0).size(), 0u);
  EXPECT_EQ(use_cases_of_size(5, 6).size(), 0u);
}

TEST(UseCases, TooManyAppsThrows) {
  EXPECT_THROW((void)all_use_cases(21), std::invalid_argument);
}

TEST(UseCases, SampleRespectsPerSizeCap) {
  util::Rng rng(3);
  const auto sample = sample_use_cases(10, 5, rng);
  std::vector<std::size_t> count(11, 0);
  for (const auto& uc : sample) ++count[uc.size()];
  for (std::size_t k = 1; k <= 10; ++k) {
    const std::size_t expected = std::min<std::size_t>(
        5, use_cases_of_size(10, k).size());
    EXPECT_EQ(count[k], expected) << "cardinality " << k;
  }
}

TEST(UseCases, SampleTakesAllWhenFew) {
  util::Rng rng(4);
  // With per_size larger than any binomial coefficient, sampling reduces to
  // full enumeration.
  const auto sample = sample_use_cases(4, 100, rng);
  EXPECT_EQ(sample.size(), all_use_cases(4).size());
}

TEST(UseCases, SampleUniqueWithinCardinality) {
  util::Rng rng(5);
  const auto sample = sample_use_cases(8, 10, rng);
  std::set<platform::UseCase> seen;
  for (const auto& uc : sample) {
    EXPECT_TRUE(seen.insert(uc).second) << "duplicate use-case";
  }
}

}  // namespace
}  // namespace procon::gen
