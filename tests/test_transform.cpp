#include "sdf/transform.h"

#include <gtest/gtest.h>

#include "analysis/throughput.h"
#include "gen/graph_generator.h"
#include "helpers.h"
#include "sdf/algorithms.h"
#include "sdf/repetition.h"

namespace procon::sdf {
namespace {

using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;

TEST(Reversed, PreservesActorsAndRepetitionVector) {
  const Graph g = fig2_graph_b();
  const Graph r = reversed(g);
  ASSERT_EQ(r.actor_count(), g.actor_count());
  EXPECT_EQ(r.channel_count(), g.channel_count());
  const auto qg = compute_repetition_vector(g);
  const auto qr = compute_repetition_vector(r);
  ASSERT_TRUE(qg && qr);
  EXPECT_EQ(*qg, *qr);
}

TEST(Reversed, MatchesHandBuiltReversedGraph) {
  // The Section 3.1 thought experiment: reversing B keeps the isolation
  // period at 300.
  const Graph r = reversed(fig2_graph_b());
  EXPECT_TRUE(is_deadlock_free(r));
  EXPECT_NEAR(analysis::compute_period(r).period, 300.0, 1e-6);
}

TEST(Reversed, Involution) {
  const Graph g = fig2_graph_a();
  const Graph rr = reversed(reversed(g));
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    EXPECT_EQ(rr.channel(c).src, g.channel(c).src);
    EXPECT_EQ(rr.channel(c).dst, g.channel(c).dst);
    EXPECT_EQ(rr.channel(c).prod_rate, g.channel(c).prod_rate);
    EXPECT_EQ(rr.channel(c).cons_rate, g.channel(c).cons_rate);
    EXPECT_EQ(rr.channel(c).initial_tokens, g.channel(c).initial_tokens);
  }
}

TEST(BufferCapacities, UnboundedLeavesGraphAlone) {
  const Graph g = fig2_graph_a();
  const std::vector<std::uint64_t> caps(g.channel_count(), 0);
  const Graph b = with_buffer_capacities(g, caps);
  EXPECT_EQ(b.channel_count(), g.channel_count());
}

TEST(BufferCapacities, AddsSpaceChannels) {
  const Graph g = fig2_graph_a();
  const std::vector<std::uint64_t> caps(g.channel_count(), 4);
  const Graph b = with_buffer_capacities(g, caps);
  EXPECT_EQ(b.channel_count(), 2 * g.channel_count());
  // The space channel of channel 0 (a0->a1, p=2, c=1, d=0) runs a1->a0
  // with swapped rates and 4 free slots.
  const Channel& space = b.channel(static_cast<ChannelId>(g.channel_count()));
  EXPECT_EQ(space.src, g.channel(0).dst);
  EXPECT_EQ(space.dst, g.channel(0).src);
  EXPECT_EQ(space.prod_rate, g.channel(0).cons_rate);
  EXPECT_EQ(space.cons_rate, g.channel(0).prod_rate);
  EXPECT_EQ(space.initial_tokens, 4u);
}

TEST(BufferCapacities, StaysConsistent) {
  const Graph g = fig2_graph_a();
  const Graph b = with_uniform_buffer_capacity(g, 4);
  const auto q = compute_repetition_vector(b);
  ASSERT_TRUE(q.has_value());
  const auto q0 = compute_repetition_vector(g);
  for (ActorId a = 0; a < g.actor_count(); ++a) {
    EXPECT_EQ((*q)[a], (*q0)[a]);
  }
}

TEST(BufferCapacities, CapacityBelowTokensThrows) {
  const Graph g = fig2_graph_a();  // channel 2 holds one initial token
  std::vector<std::uint64_t> caps(g.channel_count(), 0);
  caps[2] = 0;  // unbounded is fine
  EXPECT_NO_THROW((void)with_buffer_capacities(g, caps));
  // Explicit capacity below the initial tokens is rejected... but cap 0
  // means unbounded, so use a graph with 2 tokens and cap 1.
  const Graph b = fig2_graph_b();  // b2->b0 has two initial tokens
  std::vector<std::uint64_t> bad(b.channel_count(), 0);
  bad[2] = 1;
  EXPECT_THROW((void)with_buffer_capacities(b, bad), GraphError);
}

TEST(BufferCapacities, SizeMismatchThrows) {
  const Graph g = fig2_graph_a();
  const std::vector<std::uint64_t> wrong(1, 4);
  EXPECT_THROW((void)with_buffer_capacities(g, wrong), GraphError);
}

TEST(BufferCapacities, TightBuffersReduceThroughput) {
  // A two-actor pipeline with plenty of tokens pipelines freely; bounding
  // the forward buffer to one firing's worth serialises it.
  Graph g("pipe");
  const auto x = g.add_actor("x", 10);
  const auto y = g.add_actor("y", 10);
  g.add_channel(x, y, 1, 1, 0);
  g.add_channel(y, x, 1, 1, 4);  // four firings in flight
  const double unbounded = analysis::compute_period(g).period;
  EXPECT_NEAR(unbounded, 10.0, 1e-6);  // fully pipelined

  std::vector<std::uint64_t> caps{1, 0};  // forward buffer: one token
  const Graph tight = with_buffer_capacities(g, caps);
  const double bounded = analysis::compute_period(tight).period;
  EXPECT_NEAR(bounded, 20.0, 1e-6);  // x and y alternate
}

TEST(BufferCapacities, LargeBuffersPreservePeriod) {
  const Graph g = fig2_graph_a();
  const Graph big = with_uniform_buffer_capacity(g, 1000);
  EXPECT_NEAR(analysis::compute_period(big).period,
              analysis::compute_period(g).period, 1e-6);
}

TEST(BufferCapacities, SelfLoopsNotDoubled) {
  Graph g("s");
  const auto a = g.add_actor("a", 1);
  g.add_channel(a, a, 1, 1, 1);
  const Graph b = with_uniform_buffer_capacity(g, 3);
  EXPECT_EQ(b.channel_count(), 1u);  // self-loop already bounds itself
}

TEST(MinimalCapacities, FeasibleOnPaperGraphs) {
  for (const Graph& g : {fig2_graph_a(), fig2_graph_b()}) {
    const auto caps = minimal_feasible_capacities(g);
    const Graph bounded = with_buffer_capacities(g, caps);
    EXPECT_TRUE(is_deadlock_free(bounded)) << g.name();
    const auto r = analysis::compute_period(bounded);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.period, 0.0);
  }
}

// Property: generated graphs stay deadlock-free under minimal feasible
// capacities, and adding buffer space can only help the period.
class BufferProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferProperty, MinimalFeasibleAndMonotone) {
  util::Rng rng(GetParam());
  gen::GeneratorOptions opts;
  opts.min_actors = 4;
  opts.max_actors = 6;
  const Graph g = gen::generate_graph(rng, opts, "rnd");
  const auto caps = minimal_feasible_capacities(g);
  const Graph tight = with_buffer_capacities(g, caps);
  ASSERT_TRUE(is_deadlock_free(tight)) << "seed=" << GetParam();
  auto looser = caps;
  for (auto& c : looser) c *= 4;
  const Graph loose = with_buffer_capacities(g, looser);
  const double pt = analysis::compute_period(tight).period;
  const double pl = analysis::compute_period(loose).period;
  EXPECT_LE(pl, pt + 1e-6) << "seed=" << GetParam();
  // And unbounded is at least as fast as any bounded variant.
  EXPECT_LE(analysis::compute_period(g).period, pl + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace procon::sdf
