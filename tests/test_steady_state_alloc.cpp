// Steady-state serving guarantees, enforced with an instrumented global
// allocator (util/alloc_probe.h replaces ::operator new for this binary):
//
//  * the second and every later reset(uc) + run_view() of a previously-seen
//    use-case performs ZERO heap allocations, and its results stay bitwise
//    identical to a cold rebuild of the materialised restriction;
//  * a verdict-only what_if_admit probe of an LRU-cached candidate into a
//    reused WhatIfReport performs ZERO heap allocations and agrees with the
//    value-returning probe;
//  * LRU eviction is correctness-neutral: an evicted candidate re-probes
//    identically;
//  * deep fixed-point contention queries are thread-count invariant with
//    the nested per-app sharding;
//  * warm Workbench::contention_view queries run entirely in the session's
//    persistent estimator workspace — ZERO heap allocations;
//  * a warm streaming sweep (estimates + bounds + sim views) of a
//    previously-seen use-case list performs ZERO heap allocations end to
//    end, with results identical to the vector-returning sweep;
//  * the SimEngine ring-cache LRU bound evicts and rebuilds identically;
//  * a warm dse::Racer race (tier-(a) pulls in the persistent workspaces,
//    grow-only racer arenas) performs ZERO heap allocations.
//
// Each warm bracket is additionally armed (util/contracts.h ArmGuard), so
// the PROCON_ASSERT_NO_ALLOC scopes inside the library's annotated warm
// paths abort at the offending call site in Debug builds.
#include "util/alloc_probe.h"  // FIRST: replaces global new/delete

#include <gtest/gtest.h>

#include <vector>

#include "admission/admission.h"
#include "api/workbench.h"
#include "dse/racer.h"
#include "gen/graph_generator.h"
#include "gen/use_cases.h"
#include "helpers.h"
#include "sim/sim_engine.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace procon {
namespace {

// Hand the probe's counter to the library's PROCON_ASSERT_NO_ALLOC scopes:
// inside the ArmGuard brackets below, an allocating warm path aborts at its
// own call site (scope name + file:line) instead of only failing the
// bracket-level EXPECT afterwards. Cold passes stay unarmed and exempt.
const bool kContractScopesWired = [] {
  util::contracts::set_alloc_counter(&util::alloc_probe::allocations);
  return true;
}();

using admission::AdmissionController;
using admission::QoS;
using admission::WhatIfOptions;
using admission::WhatIfReport;
using procon::testing::fig2_graph_a;
using procon::testing::fig2_graph_b;
using procon::testing::two_actor_cycle;
using util::alloc_probe::allocations;

platform::System random_system(std::uint64_t seed, std::size_t apps) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = 6;
  auto graphs = gen::generate_graphs(rng, gopts, apps);
  std::size_t max_actors = 0;
  for (const auto& g : graphs) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(graphs, plat);
  return platform::System(std::move(graphs), std::move(plat), std::move(map));
}

void expect_same(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.node_utilisation, b.node_utilisation);
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const sim::AppSimResult& x = a.apps[i];
    const sim::AppSimResult& y = b.apps[i];
    EXPECT_EQ(x.iterations, y.iterations);
    EXPECT_EQ(x.converged, y.converged);
    EXPECT_EQ(x.average_period, y.average_period);  // bitwise, not NEAR
    EXPECT_EQ(x.worst_period, y.worst_period);
    EXPECT_EQ(x.iteration_times, y.iteration_times);
    ASSERT_EQ(x.actors.size(), y.actors.size());
    for (std::size_t k = 0; k < x.actors.size(); ++k) {
      EXPECT_EQ(x.actors[k].firings, y.actors[k].firings);
      EXPECT_EQ(x.actors[k].total_waiting, y.actors[k].total_waiting);
      EXPECT_EQ(x.actors[k].total_service, y.actors[k].total_service);
    }
  }
}

TEST(SteadyStateAlloc, WarmSimQueriesAreAllocationFree) {
  const platform::System sys = random_system(321, 5);
  sim::SimEngine engine(sys);
  util::Rng rng(7);
  const auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);
  ASSERT_FALSE(use_cases.empty());
  sim::SimOptions opts;
  opts.horizon = 20'000;

  // First pass: builds each use-case's ring set and grows every arena.
  for (const auto& uc : use_cases) {
    engine.reset(uc);
    (void)engine.run_view(opts);
  }
  const std::size_t cached = engine.ring_cache_size();
  EXPECT_GE(cached, use_cases.size());

  // Second pass over the same list: every query must be allocation-free,
  // and the ring cache must not grow.
  for (const auto& uc : use_cases) {
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    engine.reset(uc);
    const sim::SimResultView view = engine.run_view(opts);
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "warm reset+run_view of a seen use-case allocated";
    EXPECT_EQ(view.apps.size(), uc.size());
  }
  EXPECT_EQ(engine.ring_cache_size(), cached);
}

TEST(SteadyStateAlloc, WarmRoutedSimQueriesAreAllocationFree) {
  // Interconnect tier: link queues, the message pool and the per-link
  // utilisation arena must all come from preallocated storage, so a warm
  // routed query is as allocation-free as an unrouted one.
  platform::System sys = random_system(555, 4);
  const std::size_t n = sys.platform().node_count();
  sys.set_topology(n == 6 ? platform::Topology::mesh(2, 3, 2, 1)
                          : platform::Topology::ring(n, 2, 1));
  sim::SimEngine engine(sys);
  util::Rng rng(17);
  const auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);
  ASSERT_FALSE(use_cases.empty());
  sim::SimOptions opts;
  opts.horizon = 20'000;

  for (const auto& uc : use_cases) {
    engine.reset(uc);
    (void)engine.run_view(opts);
  }
  for (const auto& uc : use_cases) {
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    engine.reset(uc);
    const sim::SimResultView view = engine.run_view(opts);
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "warm routed reset+run_view of a seen use-case allocated";
    EXPECT_EQ(view.apps.size(), uc.size());
    EXPECT_EQ(view.link_utilisation.size(),
              sys.platform().topology().link_count());
  }
}

TEST(SteadyStateAlloc, WarmLinkAwareContentionViewIsAllocationFree) {
  // The estimator's flow arenas (flows, routes, per-link grouping) are
  // workspace-owned with grow-only capacity: once a routed shape has been
  // seen, the link-aware Step-4b pass allocates nothing.
  platform::System sys = random_system(556, 4);
  sys.set_topology(platform::Topology::ring(sys.platform().node_count(), 1, 2));
  api::Workbench wb(sys, api::WorkbenchOptions{.threads = 1});
  util::Rng rng(19);
  const auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);

  (void)wb.contention_view();
  for (const auto& uc : use_cases) (void)wb.contention_view(uc);

  const auto oracle = wb.contention();
  for (int rep = 0; rep < 3; ++rep) {
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    const auto& report = wb.contention_view();
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "warm link-aware contention_view allocated (rep " << rep << ")";
    ASSERT_EQ(report->size(), oracle->size());
    for (std::size_t i = 0; i < oracle->size(); ++i) {
      EXPECT_EQ((*report)[i].estimated_period, (*oracle)[i].estimated_period);
    }
  }
  for (const auto& uc : use_cases) {
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    const auto& report = wb.contention_view(uc);
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "warm restricted link-aware contention_view allocated";
    EXPECT_EQ(report->size(), uc.size());
  }
}

TEST(SteadyStateAlloc, WarmViewsMatchColdRebuildsBitwise) {
  const platform::System sys = random_system(99, 4);
  sim::SimEngine warm(sys);
  util::Rng rng(11);
  const auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);
  for (const sim::Arbitration arb :
       {sim::Arbitration::Fcfs, sim::Arbitration::RoundRobin,
        sim::Arbitration::Tdma}) {
    sim::SimOptions opts;
    opts.horizon = 15'000;
    opts.arbitration = arb;
    for (const auto& uc : use_cases) {
      // Twice per use-case: the second pass exercises the cached rings.
      for (int rep = 0; rep < 2; ++rep) {
        warm.reset(uc);
        const sim::SimResult via_view = warm.run_view(opts).materialise();
        sim::SimEngine cold(sys.restrict_to(uc));
        expect_same(via_view, cold.run(opts));
      }
    }
  }
}

TEST(SteadyStateAlloc, CachedWhatIfVerdictIsAllocationFree) {
  AdmissionController ctrl(platform::Platform::homogeneous(3));
  const sdf::Graph a = fig2_graph_a();
  const sdf::Graph b = fig2_graph_b();
  const std::vector<platform::NodeId> nodes_a{0, 1, 2};
  const std::vector<platform::NodeId> nodes_b{0, 1, 2};
  ASSERT_TRUE(ctrl.request(a, nodes_a, QoS{400.0}).admitted);

  WhatIfOptions verdict_only;
  verdict_only.with_estimates = false;
  WhatIfReport out;
  // First probe: builds the candidate's engine + loads and sizes every
  // scratch buffer and the report's storage.
  ctrl.what_if_admit(b, nodes_b, QoS{400.0}, out, verdict_only);
  ASSERT_TRUE(out.admissible);
  EXPECT_EQ(ctrl.candidate_cache_size(), 2u);  // admitted app + candidate

  for (int rep = 0; rep < 3; ++rep) {
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    ctrl.what_if_admit(b, nodes_b, QoS{400.0}, out, verdict_only);
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "cached verdict-only what_if_admit allocated (rep " << rep << ")";
  }
  EXPECT_TRUE(out.admissible);
  EXPECT_EQ(ctrl.candidate_cache_size(), 2u);

  // The allocation-free verdict agrees with the value-returning probe.
  const WhatIfReport full = ctrl.what_if_admit(b, nodes_b, QoS{400.0});
  EXPECT_EQ(out.admissible, full.admissible);
  EXPECT_EQ(out.predicted_period, full.predicted_period);
  EXPECT_EQ(out.peer_periods, full.peer_periods);
  EXPECT_TRUE(out.estimates.empty());   // verdict-only: no report
  EXPECT_FALSE(full.estimates.empty());

  // Nothing leaked into the controller state.
  EXPECT_EQ(ctrl.admitted_count(), 1u);
  // And the probe's request() twin commits with the same prediction.
  const admission::Decision real = ctrl.request(b, nodes_b, QoS{400.0});
  ASSERT_TRUE(real.admitted);
  EXPECT_EQ(real.predicted_period, full.predicted_period);
}

TEST(SteadyStateAlloc, LruEvictionReprobesIdentically) {
  const auto probe = [](AdmissionController& ctrl, const sdf::Graph& g) {
    return ctrl.what_if_admit(g, {0, 1}, QoS::no_requirement());
  };
  AdmissionController ctrl(platform::Platform::homogeneous(2),
                           /*candidate_cache_capacity=*/2);
  const sdf::Graph base = two_actor_cycle(8, 12);
  const sdf::Graph c1 = two_actor_cycle(10, 30);
  const sdf::Graph c2 = two_actor_cycle(14, 22);
  const sdf::Graph c3 = two_actor_cycle(18, 26);
  ASSERT_TRUE(ctrl.request(base, {0, 1}, QoS::no_requirement()).admitted);
  EXPECT_EQ(ctrl.candidate_cache_size(), 1u);

  const WhatIfReport first = probe(ctrl, c1);   // cache: {base, c1}
  EXPECT_EQ(ctrl.candidate_cache_size(), 2u);
  (void)probe(ctrl, c2);                        // evicts base
  (void)probe(ctrl, c3);                        // evicts c1
  EXPECT_EQ(ctrl.candidate_cache_size(), 2u);   // capacity respected

  // c1 was evicted: the re-probe rebuilds its state and must reproduce the
  // original report exactly.
  const WhatIfReport again = probe(ctrl, c1);
  EXPECT_EQ(again.admissible, first.admissible);
  EXPECT_EQ(again.predicted_period, first.predicted_period);
  EXPECT_EQ(again.peer_periods, first.peer_periods);
  ASSERT_EQ(again.estimates.size(), first.estimates.size());
  for (std::size_t i = 0; i < first.estimates.size(); ++i) {
    EXPECT_EQ(again.estimates[i].isolation_period,
              first.estimates[i].isolation_period);
    EXPECT_EQ(again.estimates[i].estimated_period,
              first.estimates[i].estimated_period);
  }
}

TEST(SteadyStateAlloc, WarmContentionViewIsAllocationFree) {
  const platform::System sys = random_system(77, 5);
  api::Workbench wb(sys, api::WorkbenchOptions{.threads = 1});
  util::Rng rng(13);
  const auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);

  // Warm-up: one query per shape sizes the workspace, slots and report.
  (void)wb.contention_view();
  for (const auto& uc : use_cases) (void)wb.contention_view(uc);

  const auto oracle = wb.contention();  // owning copy, same numbers
  for (int rep = 0; rep < 3; ++rep) {
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    const auto& report = wb.contention_view();
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u) << "warm contention_view allocated (rep "
                                  << rep << ")";
    ASSERT_EQ(report->size(), oracle->size());
    for (std::size_t i = 0; i < oracle->size(); ++i) {
      EXPECT_EQ((*report)[i].isolation_period, (*oracle)[i].isolation_period);
      EXPECT_EQ((*report)[i].estimated_period, (*oracle)[i].estimated_period);
    }
  }
  for (const auto& uc : use_cases) {
    const auto owning = wb.contention(uc);
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    const auto& report = wb.contention_view(uc);
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u) << "warm restricted contention_view allocated";
    ASSERT_EQ(report->size(), owning->size());
    for (std::size_t i = 0; i < owning->size(); ++i) {
      EXPECT_EQ((*report)[i].estimated_period, (*owning)[i].estimated_period);
      ASSERT_EQ((*report)[i].actors.size(), (*owning)[i].actors.size());
      for (std::size_t k = 0; k < (*owning)[i].actors.size(); ++k) {
        EXPECT_EQ((*report)[i].actors[k].waiting_time,
                  (*owning)[i].actors[k].waiting_time);
      }
    }
  }
}

/// Sink for the allocation probe: aggregates into preallocated storage so
/// the warm sweep's zero-alloc bracket measures the sweep, not the sink.
class ProbeSink : public api::SweepSink {
 public:
  explicit ProbeSink(std::size_t use_cases) {
    period_sums.resize(use_cases, 0.0);
    bound_sums.resize(use_cases, 0.0);
    sim_events.resize(use_cases, 0);
  }
  bool on_use_case(std::size_t index, const api::UseCaseView& r) override {
    double psum = 0.0;
    for (const auto& e : r.estimates) psum += e.estimated_period;
    period_sums[index] = psum;
    double bsum = 0.0;
    for (const auto& b : r.bounds) bsum += b.worst_case_period;
    bound_sums[index] = bsum;
    sim_events[index] = r.sim != nullptr ? r.sim->events_processed : 0;
    return true;
  }
  std::vector<double> period_sums;
  std::vector<double> bound_sums;
  std::vector<std::uint64_t> sim_events;
};

TEST(SteadyStateAlloc, WarmStreamingSweepIsAllocationFree) {
  const platform::System sys = random_system(88, 5);
  api::Workbench wb(sys, api::WorkbenchOptions{.threads = 1});
  util::Rng rng(17);
  const auto use_cases = gen::sample_use_cases(sys.app_count(), 2, rng);
  ASSERT_FALSE(use_cases.empty());

  api::SweepOptions opts;
  opts.with_wcrt = true;
  opts.with_sim = true;
  opts.sim.horizon = 10'000;

  ProbeSink warmup(use_cases.size());
  (void)wb.sweep_use_cases(use_cases, opts, warmup);  // sizes every arena

  ProbeSink probe(use_cases.size());
  const std::uint64_t before = allocations();
  const api::SweepSummary summary = [&] {
    const util::contracts::ArmGuard armed;
    return wb.sweep_use_cases(use_cases, opts, probe);
  }();
  const std::uint64_t after = allocations();
  EXPECT_EQ(after - before, 0u)
      << "warm streaming sweep of a previously-seen use-case list allocated";
  EXPECT_EQ(summary.delivered, use_cases.size());

  // Identity with the vector-returning sweep (and the warm-up pass).
  const auto vec = wb.sweep_use_cases(use_cases, opts);
  ASSERT_EQ(vec->size(), use_cases.size());
  for (std::size_t i = 0; i < use_cases.size(); ++i) {
    double psum = 0.0;
    for (const auto& e : (*vec)[i].estimates) psum += e.estimated_period;
    EXPECT_EQ(probe.period_sums[i], psum);
    double bsum = 0.0;
    for (const auto& b : (*vec)[i].bounds) bsum += b.worst_case_period;
    EXPECT_EQ(probe.bound_sums[i], bsum);
    EXPECT_EQ(probe.sim_events[i], (*vec)[i].sim.events_processed);
    EXPECT_EQ(probe.period_sums[i], warmup.period_sums[i]);
  }
}

TEST(SteadyStateAlloc, RingCacheLruEvictsAndRebuildsIdentically) {
  const platform::System sys = random_system(99, 5);
  sim::SimOptions opts;
  opts.horizon = 10'000;

  // Three distinct use-cases against a capacity-2 cache: every pass evicts.
  const std::vector<platform::UseCase> ucs{{0, 1}, {1, 2, 3}, {0, 4}};
  sim::SimEngine bounded(sys, /*ring_cache_capacity=*/2);
  sim::SimEngine unbounded(sys);
  EXPECT_EQ(bounded.ring_cache_capacity(), 2u);

  for (int round = 0; round < 3; ++round) {
    for (const auto& uc : ucs) {
      bounded.reset(uc);
      const sim::SimResult lru = bounded.run_view(opts).materialise();
      unbounded.reset(uc);
      expect_same(lru, unbounded.run_view(opts).materialise());
      EXPECT_LE(bounded.ring_cache_size(), 2u);
    }
  }
  // The unbounded engine kept everything (3 use-cases + the full system
  // armed at construction); the bounded one stayed within its capacity.
  EXPECT_EQ(unbounded.ring_cache_size(), 4u);
  EXPECT_EQ(bounded.ring_cache_size(), 2u);

  // Within-capacity working sets keep the zero-allocation warm contract.
  sim::SimEngine snug(sys, /*ring_cache_capacity=*/3);
  const std::vector<platform::UseCase> pair{{0, 1}, {1, 2, 3}};
  for (const auto& uc : pair) {
    snug.reset(uc);
    (void)snug.run_view(opts);
  }
  for (const auto& uc : pair) {
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    snug.reset(uc);
    (void)snug.run_view(opts);
    EXPECT_EQ(allocations() - before, 0u)
        << "warm within-capacity reset+run_view allocated";
  }
}

TEST(SteadyStateAlloc, WarmRacerRaceIsAllocationFree) {
  const platform::System sys = random_system(55, 3);
  // One workspace, no pool: the fully serial race.
  std::vector<dse::AnalysisWorkspace> workspaces;
  {
    dse::AnalysisWorkspace ws;
    ws.sys = sys;
    for (const sdf::Graph& g : sys.apps()) ws.engines.emplace_back(g);
    workspaces.push_back(std::move(ws));
  }
  util::Rng rng(5);
  std::vector<platform::Mapping> candidates;
  for (int i = 0; i < 10; ++i) {
    candidates.push_back(
        platform::Mapping::random(sys.apps(), sys.platform(), rng));
  }

  dse::RacerOptions ropts;
  ropts.enabled = true;
  ropts.estimator_pulls = 2;
  ropts.sim_pulls = 0;  // tier (a) only: the zero-alloc warm contract
  dse::MappingArms arms(workspaces, prob::EstimatorOptions{}, ropts,
                        /*table=*/nullptr);
  dse::Racer racer;
  std::vector<dse::ArmOutcome> outcomes(candidates.size());

  // Cold race: grows the racer arenas, the workspace estimator scratch and
  // the fingerprint slots.
  arms.bind(candidates);
  const std::size_t cold =
      racer.race(ropts, candidates.size(), arms, outcomes);

  for (int rep = 0; rep < 3; ++rep) {
    const util::contracts::ArmGuard armed;
    const std::uint64_t before = allocations();
    arms.bind(candidates);
    const std::size_t warm =
        racer.race(ropts, candidates.size(), arms, outcomes);
    EXPECT_EQ(allocations() - before, 0u)
        << "warm racer race allocated (rep " << rep << ")";
    EXPECT_EQ(warm, cold);  // and stays bitwise on the same arms
  }
}

TEST(SteadyStateAlloc, DeepFixedPointContentionIsThreadCountInvariant) {
  const platform::System sys = random_system(2024, 5);
  prob::EstimatorOptions deep;
  deep.iterations = 4;  // fixed-point passes: the nested-sharding target

  api::Workbench serial(sys, api::WorkbenchOptions{.threads = 1});
  api::Workbench sharded(sys, api::WorkbenchOptions{.threads = 4});
  const auto a = serial.contention(deep);
  const auto b = sharded.contention(deep);
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].isolation_period, (*b)[i].isolation_period);
    EXPECT_EQ((*a)[i].estimated_period, (*b)[i].estimated_period);
    ASSERT_EQ((*a)[i].actors.size(), (*b)[i].actors.size());
    for (std::size_t k = 0; k < (*a)[i].actors.size(); ++k) {
      EXPECT_EQ((*a)[i].actors[k].waiting_time, (*b)[i].actors[k].waiting_time);
      EXPECT_EQ((*a)[i].actors[k].response_time, (*b)[i].actors[k].response_time);
    }
  }

  // And the restricted deep query agrees with the one-shot estimator on the
  // materialised restriction.
  const platform::UseCase uc{0, 2, 4};
  const auto restricted = sharded.contention(uc, deep);
  const auto oracle = prob::ContentionEstimator(deep).estimate(
      platform::SystemView(sys, uc));
  ASSERT_EQ(restricted->size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ((*restricted)[i].estimated_period, oracle[i].estimated_period);
  }

  // Duplicate use-case entries alias one engine across view slots; the deep
  // query must fall back to the serial path (never race one engine across
  // workers) and still match the one-shot estimator.
  const platform::UseCase dup{1, 1};
  const auto dup_deep = sharded.contention(dup, deep);
  const auto dup_oracle = prob::ContentionEstimator(deep).estimate(
      platform::SystemView(sys, dup));
  ASSERT_EQ(dup_deep->size(), dup_oracle.size());
  for (std::size_t i = 0; i < dup_oracle.size(); ++i) {
    EXPECT_EQ((*dup_deep)[i].estimated_period, dup_oracle[i].estimated_period);
  }
}

}  // namespace
}  // namespace procon
