#include "prob/waiting_time.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace procon::prob {
namespace {

ActorLoad make_load(double tau, double p) {
  ActorLoad l;
  l.exec_time = tau;
  l.probability = p;
  l.mean_blocking = tau / 2.0;
  return l;
}

TEST(WaitingTime, EmptyNodeNoWaiting) {
  EXPECT_DOUBLE_EQ(waiting_time_exact({}), 0.0);
  EXPECT_DOUBLE_EQ(waiting_time_second_order({}), 0.0);
}

TEST(WaitingTime, SingleBlocker) {
  // Section 3's opening example: b0 waits mu(a0) * P(a0) = 50/3 ~ 17.
  const std::vector<ActorLoad> others{make_load(100.0, 1.0 / 3.0)};
  const double expected = 50.0 / 3.0;
  EXPECT_NEAR(waiting_time_exact(others), expected, 1e-12);
  // All orders coincide with a single blocker.
  EXPECT_NEAR(waiting_time_second_order(others), expected, 1e-12);
  EXPECT_NEAR(waiting_time_fourth_order(others), expected, 1e-12);
  EXPECT_NEAR(waiting_time_approx(others, 1), expected, 1e-12);
}

TEST(WaitingTime, TwoBlockersMatchesSection32) {
  // t_wait(c) = muA PA (1 + PB/2) + muB PB (1 + PA/2).
  const ActorLoad a = make_load(80.0, 0.4);   // mu = 40
  const ActorLoad b = make_load(60.0, 0.25);  // mu = 30
  const double expected = 40.0 * 0.4 * (1.0 + 0.25 / 2.0) +
                          30.0 * 0.25 * (1.0 + 0.4 / 2.0);
  const std::vector<ActorLoad> others{a, b};
  EXPECT_NEAR(waiting_time_exact(others), expected, 1e-12);
  // With two actors the series ends at j = 1, so 2nd order is exact.
  EXPECT_NEAR(waiting_time_second_order(others), expected, 1e-12);
}

TEST(WaitingTime, ThreeBlockersMatchesEquation3) {
  const ActorLoad a = make_load(100.0, 0.3);
  const ActorLoad b = make_load(50.0, 0.2);
  const ActorLoad c = make_load(80.0, 0.5);
  auto term = [](const ActorLoad& x, const ActorLoad& y, const ActorLoad& z) {
    return x.mean_blocking * x.probability *
           (1.0 + 0.5 * (y.probability + z.probability) -
            (1.0 / 3.0) * y.probability * z.probability);
  };
  const double expected = term(a, b, c) + term(b, a, c) + term(c, a, b);
  const std::vector<ActorLoad> others{a, b, c};
  EXPECT_NEAR(waiting_time_exact(others), expected, 1e-12);
  // Third order captures the full series for three actors.
  EXPECT_NEAR(waiting_time_approx(others, 3), expected, 1e-12);
}

TEST(WaitingTime, SecondOrderFormulaEq5) {
  // Eq. 5: sum_i mu_i P_i (1 + 1/2 sum_{j != i} P_j).
  const std::vector<ActorLoad> others{make_load(10.0, 0.1), make_load(20.0, 0.2),
                                      make_load(30.0, 0.3), make_load(40.0, 0.4)};
  double expected = 0.0;
  for (std::size_t i = 0; i < others.size(); ++i) {
    double psum = 0.0;
    for (std::size_t j = 0; j < others.size(); ++j) {
      if (j != i) psum += others[j].probability;
    }
    expected += others[i].weighted_blocking() * (1.0 + 0.5 * psum);
  }
  EXPECT_NEAR(waiting_time_second_order(others), expected, 1e-12);
}

TEST(WaitingTime, InvalidOrderThrows) {
  const std::vector<ActorLoad> others{make_load(1.0, 0.5)};
  EXPECT_THROW((void)waiting_time_approx(others, 0), std::invalid_argument);
}

TEST(WaitingTime, BruteForceGuard) {
  const std::vector<ActorLoad> big(25, make_load(1.0, 0.1));
  EXPECT_THROW((void)waiting_time_exact_bruteforce(big), std::invalid_argument);
}

TEST(WaitingTime, OrderBeyondCountEqualsExact) {
  const std::vector<ActorLoad> others{make_load(10.0, 0.3), make_load(20.0, 0.6),
                                      make_load(15.0, 0.2)};
  EXPECT_NEAR(waiting_time_approx(others, 10), waiting_time_exact(others), 1e-12);
}

TEST(WaitingTime, ZeroProbabilityActorIsInvisible) {
  const std::vector<ActorLoad> with{make_load(10.0, 0.4), make_load(99.0, 0.0)};
  const std::vector<ActorLoad> without{make_load(10.0, 0.4)};
  EXPECT_NEAR(waiting_time_exact(with), waiting_time_exact(without), 1e-12);
}

// -------- property-based sweeps ------------------------------------------

class WaitingTimeProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<ActorLoad> random_loads(util::Rng& rng, std::size_t max_n = 10) {
    const auto n = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_n)));
    std::vector<ActorLoad> loads;
    for (std::size_t i = 0; i < n; ++i) {
      loads.push_back(make_load(rng.uniform_real(1.0, 100.0),
                                rng.uniform_real(0.01, 0.95)));
    }
    return loads;
  }
};

TEST_P(WaitingTimeProperty, DpMatchesBruteForce) {
  util::Rng rng(GetParam());
  const auto loads = random_loads(rng);
  const double dp = waiting_time_exact(loads);
  const double bf = waiting_time_exact_bruteforce(loads);
  EXPECT_NEAR(dp, bf, 1e-9 * std::max(1.0, std::abs(bf))) << "seed=" << GetParam();
}

TEST_P(WaitingTimeProperty, SecondOrderIsMoreConservativeThanExact) {
  // The paper observes the 2nd-order estimate is always more conservative
  // (larger) than higher orders: truncating after the positive j=1 term
  // omits the negative j=2 correction.
  util::Rng rng(GetParam() + 1000);
  const auto loads = random_loads(rng);
  EXPECT_GE(waiting_time_second_order(loads) + 1e-12, waiting_time_exact(loads));
}

TEST_P(WaitingTimeProperty, AlternatingTruncationBracketsExact) {
  // Truncations after a positive term over-estimate; after a negative term
  // under-estimate (alternating-series bracket around Eq. 4).
  util::Rng rng(GetParam() + 2000);
  const auto loads = random_loads(rng);
  const double exact = waiting_time_exact(loads);
  const double even = waiting_time_approx(loads, 2);  // ends on +e1 term
  const double odd = waiting_time_approx(loads, 3);   // ends on -e2 term
  EXPECT_GE(even + 1e-12, exact);
  EXPECT_LE(odd - 1e-12, exact);
}

TEST_P(WaitingTimeProperty, ConservativeOrdering2nd4thExact) {
  // Paper (Section 5): "the second order estimate is always more
  // conservative than the fourth order estimate". Both even orders
  // over-estimate; the pointwise truncation error is C(k,m)/(k+1) which
  // shrinks as m grows: 2nd >= 4th >= exact.
  util::Rng rng(GetParam() + 5000);
  const auto loads = random_loads(rng);
  const double second = waiting_time_second_order(loads);
  const double fourth = waiting_time_fourth_order(loads);
  const double exact = waiting_time_exact(loads);
  EXPECT_GE(second + 1e-12, fourth);
  EXPECT_GE(fourth + 1e-12, exact);
}

TEST_P(WaitingTimeProperty, MonotoneInAddedLoad) {
  // Adding one more contender can only increase the expected waiting time.
  util::Rng rng(GetParam() + 3000);
  auto loads = random_loads(rng, 8);
  const double before = waiting_time_exact(loads);
  loads.push_back(make_load(rng.uniform_real(1.0, 100.0),
                            rng.uniform_real(0.05, 0.9)));
  EXPECT_GE(waiting_time_exact(loads) + 1e-12, before);
}

TEST_P(WaitingTimeProperty, WaitingNonNegative) {
  // The exact value and every *even*-order truncation are non-negative
  // (even orders over-estimate the non-negative exact value; order 1 is a
  // sum of non-negative terms). Odd orders >= 3 may undershoot below zero
  // at extreme loads - a documented artefact of the truncation.
  util::Rng rng(GetParam() + 4000);
  const auto loads = random_loads(rng);
  EXPECT_GE(waiting_time_exact(loads), 0.0);
  for (const int order : {1, 2, 4, 6}) {
    EXPECT_GE(waiting_time_approx(loads, order), 0.0) << "order " << order;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaitingTimeProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace procon::prob
