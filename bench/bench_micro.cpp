// M1: google-benchmark micro-benchmarks of the library's kernels: waiting
// time evaluation (Eq. 4 exact / approximations / composability), HSDF
// expansion, maximum cycle ratio, state-space execution, full estimation
// and the discrete-event simulator.
#include <benchmark/benchmark.h>

#include "analysis/howard.h"
#include "analysis/latency.h"
#include "analysis/throughput.h"
#include "harness.h"
#include "sdf/repetition.h"

namespace {

using namespace procon;

std::vector<prob::ActorLoad> make_loads(std::size_t n) {
  util::Rng rng(17);
  std::vector<prob::ActorLoad> loads(n);
  for (auto& l : loads) {
    l.exec_time = rng.uniform_real(10.0, 100.0);
    l.mean_blocking = l.exec_time / 2.0;
    l.probability = rng.uniform_real(0.05, 0.5);
  }
  return loads;
}

void BM_WaitingTimeExact(benchmark::State& state) {
  const auto loads = make_loads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob::waiting_time_exact(loads));
  }
}
BENCHMARK(BM_WaitingTimeExact)->Arg(2)->Arg(10)->Arg(50)->Arg(200);

void BM_WaitingTimeSecondOrder(benchmark::State& state) {
  const auto loads = make_loads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob::waiting_time_second_order(loads));
  }
}
BENCHMARK(BM_WaitingTimeSecondOrder)->Arg(2)->Arg(10)->Arg(50)->Arg(200);

void BM_WaitingTimeCompose(benchmark::State& state) {
  const auto loads = make_loads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob::compose_all(loads).weighted_blocking);
  }
}
BENCHMARK(BM_WaitingTimeCompose)->Arg(2)->Arg(10)->Arg(50)->Arg(200);

void BM_ComposeDecomposeRoundTrip(benchmark::State& state) {
  const auto loads = make_loads(16);
  const prob::Composite total = prob::compose_all(loads);
  const prob::Composite one = prob::to_composite(loads[7]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob::decompose(total, one));
  }
}
BENCHMARK(BM_ComposeDecomposeRoundTrip);

sdf::Graph bench_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  return gen::generate_graph(rng, gopts, "bench");
}

void BM_HsdfExpansion(benchmark::State& state) {
  const sdf::Graph g = bench_graph(5).with_self_loops();
  const auto q = sdf::compute_repetition_vector(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::expand_to_hsdf(g, *q, {}));
  }
}
BENCHMARK(BM_HsdfExpansion);

void BM_MaximumCycleRatio(benchmark::State& state) {
  const sdf::Graph g = bench_graph(5).with_self_loops();
  const auto q = sdf::compute_repetition_vector(g);
  const analysis::Hsdf h = analysis::expand_to_hsdf(g, *q, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::mcr_binary_search(h));
  }
}
BENCHMARK(BM_MaximumCycleRatio);

void BM_MaximumCycleRatioHoward(benchmark::State& state) {
  const sdf::Graph g = bench_graph(5).with_self_loops();
  const auto q = sdf::compute_repetition_vector(g);
  const analysis::Hsdf h = analysis::expand_to_hsdf(g, *q, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::mcr_howard(h));
  }
}
BENCHMARK(BM_MaximumCycleRatioHoward);

void BM_IterationLatency(benchmark::State& state) {
  const sdf::Graph g = bench_graph(5).with_self_loops();
  const auto q = sdf::compute_repetition_vector(g);
  const analysis::Hsdf h = analysis::expand_to_hsdf(g, *q, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::iteration_latency(h));
  }
}
BENCHMARK(BM_IterationLatency);

void BM_StateSpacePeriod(benchmark::State& state) {
  const sdf::Graph g = bench_graph(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_period_exact(g));
  }
}
BENCHMARK(BM_StateSpacePeriod);

void BM_FullEstimate(benchmark::State& state) {
  bench::Options opts;
  opts.apps = static_cast<std::size_t>(state.range(0));
  const platform::System sys = bench::make_workload(opts);
  const prob::ContentionEstimator est;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate(platform::SystemView(sys)));
  }
}
BENCHMARK(BM_FullEstimate)->Arg(2)->Arg(5)->Arg(10);

void BM_SimulateUseCase(benchmark::State& state) {
  bench::Options opts;
  opts.apps = static_cast<std::size_t>(state.range(0));
  const platform::System sys = bench::make_workload(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(sys, sim::SimOptions{.horizon = 100'000}));
  }
}
BENCHMARK(BM_SimulateUseCase)->Arg(2)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
