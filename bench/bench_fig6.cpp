// E3: reproduces Figure 6 - "Inaccuracy in application periods obtained
// through simulation and different analysis techniques" as a function of
// the number of concurrently executing applications (1..N).
//
// Expected shape (paper): zero inaccuracy at one application (no
// contention); the worst-case curve grows steeply (up to ~160%), the three
// probabilistic curves stay within ~20%, second order ~ composability, and
// fourth order lowest (max ~14%) - the "ten-fold improvement".
#include <iostream>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace procon;
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys = bench::make_workload(opts);
  const auto use_cases = bench::make_use_cases(opts, sys.app_count());
  // One session for every use-case and technique: the per-application
  // engines are built once instead of once per (use-case, technique).
  api::Workbench wb(sys, api::WorkbenchOptions{.threads = 1});
  // One simulation engine for every reference run: reset per use-case, the
  // flattened structure and restrict_to copies are paid zero times per sweep.
  sim::SimEngine sim_engine(sys);

  std::cout << "=== E3 / Figure 6: period inaccuracy vs number of concurrent "
               "applications ===\n\n";

  const auto& techniques = bench::paper_techniques();
  // err[technique][cardinality] accumulates the per-app period inaccuracy.
  std::vector<std::vector<util::RunningStats>> err(
      techniques.size(), std::vector<util::RunningStats>(sys.app_count() + 1));

  for (const auto& uc : use_cases) {
    const bench::SimReference sim =
        bench::simulate_reference(sim_engine, uc, opts.horizon);
    bool ok = true;
    for (const bool c : sim.converged) ok = ok && c;
    if (!ok) continue;
    for (std::size_t t = 0; t < techniques.size(); ++t) {
      const auto est = bench::estimate_periods(wb, uc, techniques[t]);
      for (std::size_t i = 0; i < est.size(); ++i) {
        err[t][uc.size()].add(util::percent_abs_diff(est[i], sim.average[i]));
      }
    }
  }

  util::Table table(
      "Figure 6: mean abs period inaccuracy (percent) by concurrency level");
  std::vector<std::string> header{"Concurrent apps"};
  for (const auto& t : techniques) header.push_back(t.label);
  table.set_header(header);
  for (std::size_t k = 1; k <= sys.app_count(); ++k) {
    std::vector<std::string> row{std::to_string(k)};
    for (std::size_t t = 0; t < techniques.size(); ++t) {
      row.push_back(err[t][k].count() ? util::format_double(err[t][k].mean(), 1)
                                      : "-");
    }
    table.add_row(row);
  }
  bench::emit(table, opts, "fig6_inaccuracy_vs_apps");

  // Shape summary: maximum inaccuracy per technique across cardinalities.
  std::cout << "shape: max inaccuracy -";
  for (std::size_t t = 0; t < techniques.size(); ++t) {
    double m = 0.0;
    for (std::size_t k = 1; k <= sys.app_count(); ++k) {
      if (err[t][k].count()) m = std::max(m, err[t][k].mean());
    }
    std::cout << " " << techniques[t].label << ": " << util::format_double(m, 1)
              << "%" << (t + 1 < techniques.size() ? "," : "\n");
  }
  return 0;
}
