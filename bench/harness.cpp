#include "harness.h"

#include <cstdlib>
#include <filesystem>
#include <iostream>

namespace procon::bench {

Options parse_options(int argc, char** argv) {
  Options opts;
  auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << flag << "\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed") {
      opts.seed = std::strtoull(need_value(i, arg).c_str(), nullptr, 10);
    } else if (arg == "--apps") {
      opts.apps = std::strtoull(need_value(i, arg).c_str(), nullptr, 10);
    } else if (arg == "--horizon") {
      opts.horizon = static_cast<sdf::Time>(
          std::strtoll(need_value(i, arg).c_str(), nullptr, 10));
    } else if (arg == "--per-size") {
      opts.per_size = std::strtoull(need_value(i, arg).c_str(), nullptr, 10);
    } else if (arg == "--full") {
      opts.full = true;
    } else if (arg == "--out") {
      opts.out_dir = need_value(i, arg);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --seed N --apps N --horizon N --per-size N --full "
                   "--out DIR\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << " (see --help)\n";
      std::exit(2);
    }
  }
  if (opts.apps < 1 || opts.apps > 20 || opts.horizon < 1) {
    std::cerr << "invalid option values\n";
    std::exit(2);
  }
  return opts;
}

platform::System make_workload(const Options& opts) {
  util::Rng rng(opts.seed);
  gen::GeneratorOptions gopts;  // paper defaults: 8-10 actors etc.
  auto apps = gen::generate_graphs(rng, gopts, opts.apps);
  std::size_t max_actors = 0;
  for (const auto& g : apps) max_actors = std::max(max_actors, g.actor_count());
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(apps, plat);
  return platform::System(std::move(apps), std::move(plat), std::move(map));
}

std::vector<platform::UseCase> make_use_cases(const Options& opts,
                                              std::size_t app_count) {
  if (opts.full) return gen::all_use_cases(app_count);
  util::Rng rng(opts.seed ^ 0xBEEFCAFEULL);
  return gen::sample_use_cases(app_count, opts.per_size, rng);
}

const std::vector<Technique>& paper_techniques() {
  static const std::vector<Technique> kTechniques = {
      {"Analyzed Worst Case", true, {}},
      {"Composability-based", false,
       prob::EstimatorOptions{.method = prob::Method::Composability}},
      {"Probabilistic Fourth Order", false,
       prob::EstimatorOptions{.method = prob::Method::FourthOrder}},
      {"Probabilistic Second Order", false,
       prob::EstimatorOptions{.method = prob::Method::SecondOrder}},
  };
  return kTechniques;
}

std::vector<double> estimate_periods(const platform::System& sys,
                                     const Technique& technique) {
  return estimate_periods(platform::SystemView(sys), technique);
}

std::vector<double> estimate_periods(const platform::SystemView& view,
                                     const Technique& technique) {
  std::vector<double> periods;
  if (technique.is_wcrt) {
    std::vector<analysis::ThroughputEngine> engines;
    engines.reserve(view.app_count());
    for (sdf::AppId i = 0; i < view.app_count(); ++i) {
      engines.emplace_back(view.app(i));
    }
    std::vector<analysis::ThroughputEngine*> ptrs;
    ptrs.reserve(engines.size());
    for (auto& e : engines) ptrs.push_back(&e);
    for (const auto& b : wcrt::worst_case_bounds(
             view, {}, std::span<analysis::ThroughputEngine* const>(ptrs))) {
      periods.push_back(b.worst_case_period);
    }
  } else {
    const prob::ContentionEstimator est(technique.estimator);
    for (const auto& e : est.estimate(view)) {
      periods.push_back(e.estimated_period);
    }
  }
  return periods;
}

std::vector<double> estimate_periods(api::Workbench& wb, const platform::UseCase& uc,
                                     const Technique& technique) {
  std::vector<double> periods;
  if (technique.is_wcrt) {
    const auto report = wb.wcrt(uc);
    for (const auto& b : *report) periods.push_back(b.worst_case_period);
  } else {
    const auto report = wb.contention(uc, technique.estimator);
    for (const auto& e : *report) periods.push_back(e.estimated_period);
  }
  return periods;
}

namespace {

SimReference to_reference(const sim::SimResult& r) {
  SimReference ref;
  for (const auto& app : r.apps) {
    ref.average.push_back(app.average_period);
    ref.worst.push_back(app.worst_period);
    ref.converged.push_back(app.converged);
  }
  return ref;
}

}  // namespace

SimReference simulate_reference(const platform::System& sys, sdf::Time horizon) {
  return to_reference(sim::simulate(sys, sim::SimOptions{.horizon = horizon}));
}

SimReference simulate_reference(sim::SimEngine& engine, const platform::UseCase& uc,
                                sdf::Time horizon) {
  engine.reset(uc);
  return to_reference(engine.run(sim::SimOptions{.horizon = horizon}));
}

void emit(const util::Table& table, const Options& opts, const std::string& name) {
  std::cout << table.render() << '\n';
  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);
  const std::string path = opts.out_dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (out) {
    out << table.to_csv();
    std::cout << "[csv written to " << path << "]\n\n";
  } else {
    std::cerr << "warning: could not write " << path << "\n";
  }
}

}  // namespace procon::bench
