// A3 (ablation): buffer-capacity back-pressure, connecting the contention
// model to the buffer-sizing line of work the paper cites ([16], [20]).
//
// Sweeps a uniform per-channel buffer capacity (as a multiple of the
// minimal feasible capacity) on the standard workload's full-contention
// use-case and reports (a) the analytic isolation period of the bounded
// graphs, (b) the contention estimate and (c) the simulated period.
// Expected shape: small buffers serialise the graphs (long periods);
// periods improve monotonically with capacity and converge to the
// unbounded values; the estimator keeps tracking the simulation at every
// point of the sweep.
#include <iostream>

#include "harness.h"
#include "sdf/transform.h"

int main(int argc, char** argv) {
  using namespace procon;
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System unbounded = bench::make_workload(opts);

  std::cout << "=== A3 (ablation): throughput vs buffer capacity, all "
            << opts.apps << " apps concurrent ===\n\n";

  util::Table table("Mean normalised period vs uniform buffer scale");
  table.set_header({"capacity scale", "isolation", "estimated", "simulated",
                    "estimate error [%]"});

  // Per-app minimal feasible capacities as the baseline.
  std::vector<std::vector<std::uint64_t>> base_caps;
  for (const auto& g : unbounded.apps()) {
    base_caps.push_back(sdf::minimal_feasible_capacities(g));
  }
  // Isolation periods of the *unbounded* graphs normalise everything.
  std::vector<double> iso;
  for (const auto& e : prob::ContentionEstimator().estimate(platform::SystemView(unbounded))) {
    iso.push_back(e.isolation_period);
  }

  for (const int scale : {1, 2, 4, 8, 0 /* 0 = unbounded */}) {
    std::vector<sdf::Graph> apps;
    for (std::size_t i = 0; i < unbounded.app_count(); ++i) {
      const sdf::Graph& g = unbounded.app(static_cast<sdf::AppId>(i));
      if (scale == 0) {
        apps.push_back(g);
      } else {
        auto caps = base_caps[i];
        for (auto& c : caps) c *= static_cast<std::uint64_t>(scale);
        apps.push_back(sdf::with_buffer_capacities(g, caps));
      }
    }
    platform::System sys(std::move(apps), unbounded.platform(),
                         unbounded.mapping());

    const auto est = prob::ContentionEstimator().estimate(platform::SystemView(sys));
    const auto sim = bench::simulate_reference(sys, opts.horizon);

    util::RunningStats iso_n, est_n, sim_n, err;
    for (std::size_t i = 0; i < est.size(); ++i) {
      iso_n.add(est[i].isolation_period / iso[i]);
      est_n.add(est[i].estimated_period / iso[i]);
      if (sim.converged[i]) {
        sim_n.add(sim.average[i] / iso[i]);
        err.add(util::percent_abs_diff(est[i].estimated_period, sim.average[i]));
      }
    }
    table.add_row({scale == 0 ? "unbounded" : std::to_string(scale) + "x minimal",
                   util::format_double(iso_n.mean(), 2),
                   util::format_double(est_n.mean(), 2),
                   util::format_double(sim_n.mean(), 2),
                   util::format_double(err.mean(), 1)});
  }
  bench::emit(table, opts, "buffer_sweep");
  return 0;
}
