// dse::Racer — full-precision evaluations saved by best-arm racing, the
// PR-over-PR tracker for the fidelity-ladder DSE paths.
//
// Two measurements on the paper workload:
//
//  1. mapping race: C random candidate mappings scored by the exhaustive
//     path (racer oracle mode — every candidate to full precision) vs the
//     racing path (estimator fidelity ladder, max_survivors = 2). Gates:
//     the racer performs >= 5x fewer full-precision evaluations, its
//     winner's full-precision score is within 5% of the exhaustive
//     optimum, and the raced result is bitwise identical for 1 vs 4
//     worker threads (the determinism contract).
//
//  2. buffer frontier: the greedy capacity walk of a deep pipeline,
//     exhaustive (every channel re-evaluated per step) vs raced (cached
//     priors, one survivor full-evaluated per step, periodic re-sync
//     sweeps). Gates: >= 5x fewer bounded-period candidate evaluations
//     (FrontierResult::evaluations, counted identically on both walks),
//     final period within 5%, and two raced walks are bitwise identical.
//
// Emits BENCH_racer.json; CI smoke-runs it with tiny counts and the
// Release gate checks the eval-ratio / quality / identity flags on the
// committed copy.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/workbench.h"
#include "dse/buffer_explorer.h"
#include "dse/racer.h"
#include "harness.h"
#include "util/rng.h"

namespace {

using namespace procon;

/// Deep pipeline with a token-limited feedback ring: the buffer walk has
/// many improving steps before it converges, so racing has work to save.
sdf::Graph deep_pipeline(std::size_t stages) {
  sdf::Graph g("pipe");
  std::vector<sdf::ActorId> actors;
  actors.reserve(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    actors.push_back(g.add_actor("s" + std::to_string(i),
                                 static_cast<sdf::Time>(5 + (3 * i) % 11)));
  }
  for (std::size_t i = 0; i + 1 < stages; ++i) {
    g.add_channel(actors[i], actors[i + 1], 1, 1, 0);
  }
  g.add_channel(actors[stages - 1], actors[0], 1, 1,
                static_cast<std::uint64_t>(stages));
  return g;
}

bool outcomes_equal(const dse::ArmOutcome& a, const dse::ArmOutcome& b) {
  return a.score == b.score && a.full == b.full && a.pulls == b.pulls &&
         a.eliminated_round == b.eliminated_round;
}

bool races_identical(const dse::MappingRace& a, const dse::MappingRace& b) {
  if (a.best != b.best || a.scores.size() != b.scores.size()) return false;
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    if (a.scores[i] != b.scores[i]) return false;
    if (!outcomes_equal(a.outcomes[i], b.outcomes[i])) return false;
  }
  return a.stats.full_evals == b.stats.full_evals &&
         a.stats.eliminated == b.stats.eliminated &&
         a.stats.estimator_pulls == b.stats.estimator_pulls &&
         a.stats.sim_pulls == b.stats.sim_pulls;
}

bool frontiers_identical(const dse::FrontierResult& a,
                         const dse::FrontierResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t k = 0; k < a.points.size(); ++k) {
    if (a.points[k].capacities != b.points[k].capacities) return false;
    if (a.points[k].total_tokens != b.points[k].total_tokens) return false;
    if (a.points[k].period != b.points[k].period) return false;
  }
  return a.racer.full_evals == b.racer.full_evals &&
         a.racer.exhaustive_evals == b.racer.exhaustive_evals &&
         a.evaluations == b.evaluations;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys = bench::make_workload(opts);

  // ---- 1. mapping race ----------------------------------------------------
  const std::size_t kCandidates = 16 * std::max<std::size_t>(opts.apps / 2, 2);
  util::Rng rng(opts.seed + 1);
  std::vector<platform::Mapping> candidates;
  candidates.reserve(kCandidates);
  for (std::size_t i = 0; i < kCandidates; ++i) {
    candidates.push_back(
        platform::Mapping::random(sys.apps(), sys.platform(), rng));
  }
  prob::EstimatorOptions estimator;
  estimator.iterations = 4;  // full precision = deep fixed point

  dse::RacerOptions oracle;
  oracle.enabled = false;
  dse::RacerOptions racing;
  racing.enabled = true;
  racing.estimator_pulls = 2;
  racing.sim_pulls = 0;
  racing.max_survivors = 2;

  api::Workbench exhaustive_wb(sys, api::WorkbenchOptions{.threads = 4});
  bench::Stopwatch clock;
  const auto exhaustive = *exhaustive_wb.race_mappings(candidates, estimator, oracle);
  const double map_exhaustive_s = clock.seconds();

  api::Workbench raced_wb(sys, api::WorkbenchOptions{.threads = 4});
  clock = bench::Stopwatch();
  const auto raced = *raced_wb.race_mappings(candidates, estimator, racing);
  const double map_raced_s = clock.seconds();

  // Determinism gate: the same race on a serial session, bitwise.
  api::Workbench serial_wb(sys, api::WorkbenchOptions{.threads = 1});
  const auto raced_serial = *serial_wb.race_mappings(candidates, estimator, racing);
  bool identical = races_identical(raced, raced_serial);

  const double map_best_exhaustive = exhaustive.scores[exhaustive.best];
  const double map_best_raced = raced.scores[raced.best];
  const double map_quality =
      map_best_exhaustive > 0.0
          ? (map_best_raced - map_best_exhaustive) / map_best_exhaustive
          : 0.0;
  const double map_ratio = raced.stats.eval_ratio();

  // ---- 2. buffer frontier -------------------------------------------------
  const sdf::Graph pipe = deep_pipeline(12);
  dse::BufferExplorerOptions bopts;
  bopts.max_steps = 128;

  clock = bench::Stopwatch();
  const dse::FrontierResult buf_exhaustive = dse::explore_buffer_frontier(pipe, bopts);
  const double buf_exhaustive_s = clock.seconds();

  dse::BufferExplorerOptions braced = bopts;
  braced.racer.enabled = true;
  braced.racer.estimator_pulls = 2;
  braced.racer.max_survivors = 1;
  braced.racer.resync_every = 24;
  clock = bench::Stopwatch();
  const dse::FrontierResult buf_raced = dse::explore_buffer_frontier(pipe, braced);
  const double buf_raced_s = clock.seconds();
  identical = identical &&
              frontiers_identical(buf_raced, dse::explore_buffer_frontier(pipe, braced));

  const double buf_final_exhaustive = buf_exhaustive.points.back().period;
  const double buf_final_raced = buf_raced.points.back().period;
  const double buf_quality =
      buf_final_exhaustive > 0.0
          ? (buf_final_raced - buf_final_exhaustive) / buf_final_exhaustive
          : 0.0;
  const double buf_ratio =
      buf_raced.evaluations > 0
          ? static_cast<double>(buf_exhaustive.evaluations) /
                static_cast<double>(buf_raced.evaluations)
          : 1.0;

  const bool gates_ok = map_ratio >= 5.0 && buf_ratio >= 5.0 &&
                        map_quality <= 0.05 && buf_quality <= 0.05 && identical;

  char json[896];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"racer\",\"seed\":%llu,\"apps\":%zu,\"candidates\":%zu,"
      "\"mapping_full_evals\":%llu,\"mapping_exhaustive_evals\":%llu,"
      "\"mapping_eval_ratio\":%.2f,\"mapping_exhaustive_ms\":%.2f,"
      "\"mapping_raced_ms\":%.2f,\"mapping_speedup\":%.2f,"
      "\"mapping_quality_delta\":%.4f,"
      "\"buffer_full_evals\":%llu,\"buffer_exhaustive_evals\":%llu,"
      "\"buffer_eval_ratio\":%.2f,\"buffer_exhaustive_ms\":%.2f,"
      "\"buffer_raced_ms\":%.2f,\"buffer_speedup\":%.2f,"
      "\"buffer_quality_delta\":%.4f,\"identical\":%s}",
      static_cast<unsigned long long>(opts.seed), opts.apps, kCandidates,
      static_cast<unsigned long long>(raced.stats.full_evals),
      static_cast<unsigned long long>(raced.stats.exhaustive_evals), map_ratio,
      1e3 * map_exhaustive_s, 1e3 * map_raced_s,
      map_raced_s > 0.0 ? map_exhaustive_s / map_raced_s : 0.0, map_quality,
      static_cast<unsigned long long>(buf_raced.evaluations),
      static_cast<unsigned long long>(buf_exhaustive.evaluations),
      buf_ratio, 1e3 * buf_exhaustive_s, 1e3 * buf_raced_s,
      buf_raced_s > 0.0 ? buf_exhaustive_s / buf_raced_s : 0.0, buf_quality,
      identical ? "true" : "false");

  std::cout << json << "\n";
  std::ofstream out("BENCH_racer.json");
  out << json << "\n";

  if (!gates_ok) {
    std::cerr << "FAIL: racing saved < 5x full evaluations, lost > 5% "
                 "quality, or broke the bitwise determinism contract\n";
    return 1;
  }
  return 0;
}
