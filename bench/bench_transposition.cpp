// The sharded transposition table under cross-tenant load — the
// PR-over-PR tracker for Zobrist-keyed result memoisation.
//
// Three measurements on the paper workload:
//
//  1. cross-tenant repeated-query speedup: T structurally identical
//     tenants (renamed clones of the workload system) each open R fresh
//     sessions and run the same analysis mix (per-app throughput /
//     latency / bottleneck, buffer frontiers, whole-system WCRT). The
//     table-off arm recomputes everything per session; the table-on arm
//     shares one TranspositionTable across all sessions, so only the
//     first session pays — fingerprints are name-free, later tenants hit
//     the first tenant's entries. Results are checked bitwise identical
//     between the arms (the table is a pure memo, never an approximation).
//
//  2. service-level hit rate: an AnalysisService with its default shared
//     table serves the same query kinds across the renamed tenants; the
//     tt-stats counters it exposes are reported.
//
//  3. warm-hit allocation count: a warm table-backed admission verdict
//     probe (what_if_admit with estimates off) is bracketed with the
//     alloc probe; the count per probe must be ZERO.
//
// Emits BENCH_transposition.json; CI smoke-runs it and the Release gate
// checks the identity flag on the committed copy.
#include "util/alloc_probe.h"  // FIRST: replaces global new/delete

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "admission/admission.h"
#include "analysis/transposition_table.h"
#include "api/service.h"
#include "api/workbench.h"
#include "harness.h"

namespace {

using namespace procon;

/// Structurally identical copy of `sys` under fresh names: the name-free
/// Zobrist fingerprints hash it equal, so tenants share table entries.
platform::System renamed_clone(const platform::System& sys,
                               const std::string& suffix) {
  std::vector<sdf::Graph> apps;
  apps.reserve(sys.app_count());
  for (const sdf::Graph& g : sys.apps()) {
    sdf::Graph r(g.name() + suffix);
    for (const sdf::Actor& a : g.actors()) r.add_actor(a.name + suffix, a.exec_time);
    for (const sdf::Channel& c : g.channels()) {
      r.add_channel(c.src, c.dst, c.prod_rate, c.cons_rate, c.initial_tokens);
    }
    apps.push_back(std::move(r));
  }
  return platform::System(std::move(apps), sys.platform(), sys.mapping());
}

/// The repeated analysis mix of one session; every produced double is
/// appended to `out` in call order so the two arms can be compared
/// bitwise.
void run_session_mix(api::Workbench& wb, std::vector<double>& out) {
  dse::BufferExplorerOptions bopts;
  bopts.max_steps = 32;
  const std::size_t frontier_apps = std::min<std::size_t>(wb.app_count(), 4);
  for (sdf::AppId app = 0; app < static_cast<sdf::AppId>(wb.app_count()); ++app) {
    const auto thr = wb.throughput(app);
    out.push_back(thr->period);
    const auto lat = wb.latency(app);
    out.push_back(lat->latency);
    const auto bot = wb.bottleneck(app);
    out.push_back(bot->period);
    out.push_back(static_cast<double>(bot->actors.size()));
  }
  for (sdf::AppId app = 0; app < static_cast<sdf::AppId>(frontier_apps); ++app) {
    const auto frontier = wb.buffer_frontier(app, bopts);
    for (const dse::BufferPoint& p : frontier->points) {
      out.push_back(p.period);
      out.push_back(static_cast<double>(p.total_tokens));
    }
  }
  const auto bounds = wb.wcrt();
  for (const wcrt::AppBound& b : *bounds) {
    out.push_back(b.isolation_period);
    out.push_back(b.worst_case_period);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System base = bench::make_workload(opts);
  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kRounds = 2;

  std::vector<platform::System> tenants;
  tenants.reserve(kTenants);
  tenants.push_back(base);
  for (std::size_t t = 1; t < kTenants; ++t) {
    tenants.push_back(renamed_clone(base, "_t" + std::to_string(t)));
  }

  // ---- 1. cross-tenant repeated-query speedup -----------------------------
  // Fresh session per (round, tenant) in both arms — the service's
  // session-eviction scenario. Only the query mix is timed; session
  // construction (engine building) is identical in both arms.
  const auto run_arm = [&](const std::shared_ptr<analysis::TranspositionTable>&
                               table,
                           std::vector<double>& values) {
    double seconds = 0.0;
    for (std::size_t round = 0; round < kRounds; ++round) {
      for (const platform::System& sys : tenants) {
        api::Workbench wb(sys,
                          api::WorkbenchOptions{.threads = 1, .table = table});
        bench::Stopwatch clock;
        run_session_mix(wb, values);
        seconds += clock.seconds();
      }
    }
    return seconds;
  };

  std::vector<double> off_values;
  const double off_seconds = run_arm(nullptr, off_values);

  const auto table =
      std::make_shared<analysis::TranspositionTable>(std::size_t{1} << 16, 16);
  std::vector<double> on_values;
  const double on_seconds = run_arm(table, on_values);

  bool identical = off_values.size() == on_values.size();
  for (std::size_t i = 0; identical && i < off_values.size(); ++i) {
    identical = off_values[i] == on_values[i];
  }
  const double speedup = on_seconds > 0.0 ? off_seconds / on_seconds : 0.0;
  const analysis::TranspositionTable::Stats wb_stats = table->stats();

  // ---- 2. service-level hit rate ------------------------------------------
  double service_hit_rate = 0.0;
  {
    api::AnalysisService service(api::ServiceOptions{
        .threads = 1, .session_capacity = kTenants});
    std::vector<api::SystemId> ids;
    ids.reserve(kTenants);
    for (const platform::System& sys : tenants) {
      ids.push_back(service.register_system(sys));
    }
    for (std::size_t round = 0; round < kRounds; ++round) {
      for (const api::SystemId id : ids) {
        for (std::size_t k = 0; k < base.app_count(); ++k) {
          api::QueryDesc d;
          d.kind = k % 2 == 0 ? api::QueryKind::Throughput
                              : api::QueryKind::Bottleneck;
          d.app = static_cast<sdf::AppId>(k % base.app_count());
          service.submit(id, d).wait();
        }
        api::QueryDesc w;
        w.kind = api::QueryKind::Wcrt;
        service.submit(id, w).wait();
      }
    }
    const analysis::TranspositionTable::Stats s = service.transposition_stats();
    service_hit_rate = s.hit_rate();
    identical = identical && s.hits > 0;
  }

  // ---- 3. warm-hit allocation count ---------------------------------------
  std::uint64_t warm_probe_allocs = 0;
  {
    admission::AdmissionController ctrl(base.platform(), 8, table);
    std::vector<platform::NodeId> nodes0(base.app(0).actor_count());
    for (std::size_t a = 0; a < nodes0.size(); ++a) {
      nodes0[a] = static_cast<platform::NodeId>(a);
    }
    std::vector<platform::NodeId> nodes1(base.app(1).actor_count());
    for (std::size_t a = 0; a < nodes1.size(); ++a) {
      nodes1[a] = static_cast<platform::NodeId>(a);
    }
    (void)ctrl.request(base.app(0), nodes0, admission::QoS::no_requirement());
    admission::WhatIfOptions verdict_only;
    verdict_only.with_estimates = false;
    admission::WhatIfReport report;
    ctrl.what_if_admit(base.app(1), nodes1, admission::QoS::no_requirement(),
                       report, verdict_only);  // warm-up: fills the table
    constexpr std::uint64_t kProbes = 16;
    const std::uint64_t before = util::alloc_probe::allocations();
    for (std::uint64_t i = 0; i < kProbes; ++i) {
      ctrl.what_if_admit(base.app(1), nodes1, admission::QoS::no_requirement(),
                         report, verdict_only);
    }
    warm_probe_allocs = (util::alloc_probe::allocations() - before) / kProbes;
    identical = identical && warm_probe_allocs == 0;
  }

  char json[768];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"transposition\",\"seed\":%llu,\"tenants\":%zu,"
      "\"rounds\":%zu,\"table_off_ms\":%.2f,\"table_on_ms\":%.2f,"
      "\"speedup\":%.2f,\"tt_hits\":%llu,\"tt_misses\":%llu,"
      "\"tt_hit_rate\":%.3f,\"tt_evictions\":%llu,"
      "\"service_tt_hit_rate\":%.3f,\"warm_probe_allocs\":%llu,"
      "\"identical\":%s}",
      static_cast<unsigned long long>(opts.seed), kTenants, kRounds,
      1e3 * off_seconds, 1e3 * on_seconds, speedup,
      static_cast<unsigned long long>(wb_stats.hits),
      static_cast<unsigned long long>(wb_stats.misses), wb_stats.hit_rate(),
      static_cast<unsigned long long>(wb_stats.evictions), service_hit_rate,
      static_cast<unsigned long long>(warm_probe_allocs),
      identical ? "true" : "false");

  std::cout << json << "\n";
  std::ofstream out("BENCH_transposition.json");
  out << json << "\n";

  if (!identical) {
    std::cerr << "FAIL: table-on results diverged from the table-off "
                 "baseline, the service table never hit, or a warm probe "
                 "allocated\n";
    return 1;
  }
  return 0;
}
