// The net:: cluster tier under load: queries/sec scaling from 1 to 4
// analysis shards, and tail latency under a skewed (zipfian) tenant mix —
// the PR-over-PR tracker for the distributed front door.
//
// Workload: 8 tenant systems (3 generated applications each) spread over
// in-process loopback AnalysisServers by fingerprint routing. Client
// threads draw tenants from a zipf(1) distribution — a few tenants take
// most of the traffic, as a real multi-tenant service sees — and rotate
// through Contention / Wcrt / Throughput queries.
//
// Three measurements:
//
//  1. queries/sec vs shard count (1, 2, 4): every shard's resident service
//     is pinned to 2 worker threads (a fixed-core "machine"), and the
//     timed queries are unique-seed stochastic simulations — no two
//     coalesce and none hits the result cache, so the fleet's aggregate
//     compute is the bottleneck and shards scale it. Tenants are drawn
//     uniformly here: queries of ONE tenant serialise on its session's
//     FIFO by design (determinism), so a zipfian head tenant would cap
//     aggregate q/s at its own serial rate no matter the shard count.
//     The JSON records hardware_threads alongside: shards only scale
//     q/s when the machine has cores to back them (on a 1-core runner
//     every fleet size shares the same CPU and the curve is flat — the
//     identity claim is what that configuration still proves).
//
//  2. tail latency (p50 / p95 / p99) of synchronous routed queries on the
//     4-shard fleet under the zipfian mix, over the hot serving path
//     (repeated queries, served from the shards' result arenas).
//
//  3. bitwise identity: EVERY routed result's value payload (provenance
//     excluded — wall time is not a result) is compared against a direct
//     in-process AnalysisService oracle. The 4-shard run additionally
//     starts as a 2-shard fleet and grows mid-run, so the identity claim
//     covers a non-trivial migration history too. `identical` in the JSON
//     is the AND over every comparison in every configuration.
//
// Emits BENCH_cluster.json; CI smoke-runs it and gates releases on
// `identical`.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "gen/graph_generator.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "util/rng.h"

namespace {

using namespace procon;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kTenants = 8;
constexpr std::size_t kClients = 4;
constexpr std::size_t kQueriesPerConfig = 256;
constexpr std::size_t kLatencyQueries = 256;

platform::System random_system(std::uint64_t seed, std::size_t apps) {
  util::Rng rng(seed);
  gen::GeneratorOptions gopts;
  gopts.min_actors = 3;
  gopts.max_actors = 6;
  auto graphs = gen::generate_graphs(rng, gopts, apps);
  std::size_t max_actors = 0;
  for (const auto& g : graphs) {
    max_actors = std::max(max_actors, g.actor_count());
  }
  platform::Platform plat = platform::Platform::homogeneous(max_actors);
  platform::Mapping map = platform::Mapping::by_index(graphs, plat);
  return platform::System(std::move(graphs), std::move(plat), std::move(map));
}

/// Zipf(1) over kTenants ranks: tenant r drawn with weight 1/(r+1).
std::size_t zipf_tenant(util::Rng& rng) {
  static const std::vector<double> cdf = [] {
    std::vector<double> c;
    double total = 0.0;
    for (std::size_t r = 0; r < kTenants; ++r) total += 1.0 / double(r + 1);
    double acc = 0.0;
    for (std::size_t r = 0; r < kTenants; ++r) {
      acc += 1.0 / double(r + 1) / total;
      c.push_back(acc);
    }
    return c;
  }();
  const double u = rng.uniform01();
  return static_cast<std::size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

api::QueryDesc desc_for(std::size_t k) {
  api::QueryDesc d;
  switch (k % 3) {
    case 0: d.kind = api::QueryKind::Contention; break;
    case 1: d.kind = api::QueryKind::Wcrt; break;
    default: d.kind = api::QueryKind::Throughput; break;
  }
  return d;
}

/// A unique compute-bound query: a stochastic simulation whose sample seed
/// no other query shares, so it can neither coalesce nor hit the result
/// cache — it must execute on its home shard.
api::QueryDesc sim_desc(std::uint64_t sample_seed) {
  api::QueryDesc d;
  d.kind = api::QueryKind::Simulate;
  d.sim.horizon = 300'000;
  d.sim.sample_seed = sample_seed;
  return d;
}

std::vector<std::uint8_t> payload_bytes(const api::QueryValue& v) {
  net::WireWriter w;
  net::encode_query_payload(w, v);
  return w.take();
}

}  // namespace

int main(int, char**) {
  const std::uint64_t seed = 2007;

  std::vector<platform::System> systems;
  systems.reserve(kTenants);
  for (std::size_t t = 0; t < kTenants; ++t) {
    systems.push_back(random_system(seed + t, 3));
  }

  // The oracle: one direct in-process service, and the expected payload
  // bytes per (tenant, query-kind) — the routed fleet must reproduce these
  // for any shard count, client count, and migration history.
  api::AnalysisService oracle(api::ServiceOptions{});
  std::vector<api::SystemId> oracle_ids;
  for (const auto& sys : systems) {
    oracle_ids.push_back(oracle.register_system(sys));
  }
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::uint8_t>>
      expected;
  for (std::size_t t = 0; t < kTenants; ++t) {
    for (std::size_t k = 0; k < 3; ++k) {
      expected[{t, k}] =
          payload_bytes(oracle.submit(oracle_ids[t], desc_for(k)).get());
    }
  }

  bool identical = true;
  std::size_t migrated = 0;

  // ---- 1. queries/sec vs shard count --------------------------------------
  std::map<std::size_t, double> qps;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<std::unique_ptr<net::AnalysisServer>> fleet;
    std::vector<std::string> endpoints;
    for (std::size_t s = 0; s < shards; ++s) {
      net::ServerOptions sopts;
      sopts.service.threads = 2;  // a fixed-core "machine" per shard
      fleet.push_back(std::make_unique<net::AnalysisServer>(sopts));
      endpoints.push_back(":" + std::to_string(fleet.back()->port()));
    }
    // The 4-shard fleet starts at half size and grows mid-run: the
    // identity numbers below therefore cover tenant migration.
    const bool grow = shards == 4;
    std::vector<std::string> initial = endpoints;
    if (grow) initial.resize(2);
    net::ClusterClient cluster(net::ClusterOptions{.endpoints = initial});
    std::vector<net::TenantId> ids;
    for (const auto& sys : systems) {
      ids.push_back(cluster.register_system(sys));
    }

    // Warm every (tenant, kind) once so the timed window measures the
    // serving path, not cold session construction.
    for (std::size_t t = 0; t < kTenants; ++t) {
      for (std::size_t k = 0; k < 3; ++k) {
        identical = identical &&
                    payload_bytes(cluster.query(ids[t], desc_for(k))) ==
                        expected[{t, k}];
      }
    }
    if (grow) migrated = cluster.set_endpoints(endpoints);

    // Timed window: unique-seed simulations, pipelined in windows of 16.
    // Each worker records (tenant, seed, payload) so identity can be
    // verified against the oracle after the clock stops.
    struct Routed {
      std::size_t tenant;
      std::uint64_t sample_seed;
      std::vector<std::uint8_t> payload;
    };
    std::vector<std::vector<Routed>> routed(kClients);
    std::vector<char> worker_ok(kClients, 1);
    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < kClients; ++c) {
      workers.emplace_back([&, c] {
        util::Rng rng(seed * 31 + shards * 7 + c);
        const std::size_t total = kQueriesPerConfig / kClients;
        std::size_t done = 0;
        while (done < total) {
          const std::size_t batch = std::min<std::size_t>(16, total - done);
          std::vector<net::PendingQuery> pending;
          pending.reserve(batch);
          for (std::size_t i = 0; i < batch; ++i) {
            const std::size_t tenant = static_cast<std::size_t>(
                rng.uniform_int(0, kTenants - 1));
            // Globally unique: (shards, client, index) never repeats.
            const std::uint64_t s_seed =
                shards * 1'000'000 + c * 100'000 + done + i;
            routed[c].push_back(Routed{tenant, s_seed, {}});
            pending.push_back(cluster.submit(ids[tenant], sim_desc(s_seed)));
          }
          for (std::size_t i = 0; i < batch; ++i) {
            routed[c][done + i].payload =
                payload_bytes(cluster.await(pending[i]));
          }
          done += batch;
        }
      });
    }
    for (auto& w : workers) w.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    qps[shards] = double(kQueriesPerConfig) / secs;

    // Untimed identity pass: replay every routed query on the oracle.
    for (std::size_t c = 0; c < kClients; ++c) {
      for (const Routed& q : routed[c]) {
        const auto direct = payload_bytes(
            oracle.submit(oracle_ids[q.tenant], sim_desc(q.sample_seed))
                .get());
        if (q.payload != direct) worker_ok[c] = 0;
      }
    }
    for (const char ok : worker_ok) identical = identical && ok != 0;

    // ---- 2. tail latency on the grown (post-migration) 4-shard fleet ----
    if (grow) {
      std::vector<std::vector<double>> lat_us(kClients);
      std::vector<std::thread> probes;
      for (std::size_t c = 0; c < kClients; ++c) {
        probes.emplace_back([&, c] {
          util::Rng rng(seed * 77 + c);
          for (std::size_t k = 0; k < kLatencyQueries / kClients; ++k) {
            const std::size_t tenant = zipf_tenant(rng);
            const std::size_t kind = k % 3;
            const auto q0 = Clock::now();
            const api::QueryValue v = cluster.query(ids[tenant], desc_for(kind));
            lat_us[c].push_back(
                std::chrono::duration<double, std::micro>(Clock::now() - q0)
                    .count());
            if (payload_bytes(v) != expected[{tenant, kind}]) {
              worker_ok[c] = 0;
            }
          }
        });
      }
      for (auto& p : probes) p.join();
      for (const char ok : worker_ok) identical = identical && ok != 0;
      std::vector<double> all;
      for (const auto& l : lat_us) all.insert(all.end(), l.begin(), l.end());
      std::sort(all.begin(), all.end());
      const auto pct = [&](double p) {
        return all[std::min(all.size() - 1,
                            static_cast<std::size_t>(p * double(all.size())))];
      };
      char json[768];
      std::snprintf(
          json, sizeof(json),
          "{\"bench\":\"cluster\",\"seed\":%llu,\"tenants\":%zu,"
          "\"clients\":%zu,\"queries_per_config\":%zu,"
          "\"hardware_threads\":%u,"
          "\"qps_shards_1\":%.0f,\"qps_shards_2\":%.0f,\"qps_shards_4\":%.0f,"
          "\"zipf_p50_us\":%.1f,\"zipf_p95_us\":%.1f,\"zipf_p99_us\":%.1f,"
          "\"migrated_tenants\":%zu,\"identical\":%s}",
          static_cast<unsigned long long>(seed), kTenants, kClients,
          kQueriesPerConfig, std::thread::hardware_concurrency(), qps[1],
          qps[2], qps[4], pct(0.50), pct(0.95), pct(0.99), migrated,
          identical ? "true" : "false");
      std::cout << json << "\n";
      std::ofstream out("BENCH_cluster.json");
      out << json << "\n";
    }
  }

  if (!identical) {
    std::cerr << "FAIL: routed results diverged from the direct "
                 "AnalysisService oracle\n";
    return 1;
  }
  return 0;
}
