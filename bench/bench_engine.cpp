// Fresh-path vs ThroughputEngine repeated period analysis.
//
// The repeated-analysis pattern of the estimator / DSE / admission loops:
// the same graphs are re-analysed hundreds of times with perturbed actor
// execution times. The fresh path (compute_period) redoes the self-loop
// closure, repetition vector, HSDF expansion and a cold Howard start per
// call; the engine path pays structure once per graph and then only
// rewrites weights and warm-starts Howard. Both paths run on the paper
// workload (10 strongly-connected apps, 8-10 actors) over identical
// execution-time sequences, results are compared to 1e-9 relative, and the
// speedup record is emitted as machine-readable BENCH_engine.json so the
// perf trajectory is tracked from PR to PR.
//
// Flags: the common harness set (--seed, --apps, --out, ...).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/engine.h"
#include "analysis/throughput.h"
#include "harness.h"
#include "util/rng.h"

namespace {

using namespace procon;

constexpr std::size_t kRepetitions = 400;  // exec-time assignments per app
constexpr double kTolerance = 1e-9;

// ±10% perturbations around the nominal times, mimicking the waiting-time
// annotations the estimator feeds back into the period analysis.
std::vector<std::vector<double>> make_sequences(const sdf::Graph& g,
                                                util::Rng& rng) {
  std::vector<double> base;
  base.reserve(g.actor_count());
  for (const sdf::Actor& a : g.actors()) {
    base.push_back(static_cast<double>(a.exec_time));
  }
  std::vector<std::vector<double>> seqs(kRepetitions, base);
  for (auto& seq : seqs) {
    for (double& t : seq) t *= rng.uniform_real(0.9, 1.1);
  }
  return seqs;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  util::Rng rng(opts.seed + 1);

  const auto sys = bench::make_workload(opts);
  const auto apps = sys.apps();

  std::vector<std::vector<std::vector<double>>> sequences;
  sequences.reserve(apps.size());
  for (const sdf::Graph& g : apps) sequences.push_back(make_sequences(g, rng));

  // --- fresh path: full structural recomputation per call ------------------
  std::vector<std::vector<double>> fresh_periods(apps.size());
  bench::Stopwatch fresh_watch;
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    fresh_periods[i].reserve(kRepetitions);
    for (const auto& times : sequences[i]) {
      fresh_periods[i].push_back(analysis::compute_period(apps[i], times).period);
    }
  }
  const double fresh_seconds = fresh_watch.seconds();

  // --- engine path: structure cached, Howard warm-started ------------------
  std::vector<std::vector<double>> engine_periods(apps.size());
  bench::Stopwatch engine_watch;
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    analysis::ThroughputEngine engine(apps[i]);  // construction included
    engine_periods[i].reserve(kRepetitions);
    for (const auto& times : sequences[i]) {
      engine_periods[i].push_back(engine.recompute(times).period);
    }
  }
  const double engine_seconds = engine_watch.seconds();

  double max_rel_diff = 0.0;
  for (sdf::AppId i = 0; i < apps.size(); ++i) {
    for (std::size_t r = 0; r < kRepetitions; ++r) {
      const double ref = fresh_periods[i][r];
      const double diff = std::abs(engine_periods[i][r] - ref);
      max_rel_diff = std::max(max_rel_diff, diff / std::max(1.0, std::abs(ref)));
    }
  }

  const std::size_t calls = apps.size() * kRepetitions;
  const double speedup = engine_seconds > 0.0 ? fresh_seconds / engine_seconds : 0.0;

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"engine\",\"seed\":%llu,\"apps\":%zu,"
                "\"repetitions\":%zu,\"calls\":%zu,"
                "\"fresh_seconds\":%.6f,\"engine_seconds\":%.6f,"
                "\"fresh_us_per_call\":%.3f,\"engine_us_per_call\":%.3f,"
                "\"speedup\":%.2f,\"max_rel_diff\":%.3g,\"identical\":%s}",
                static_cast<unsigned long long>(opts.seed), apps.size(),
                kRepetitions, calls, fresh_seconds, engine_seconds,
                1e6 * fresh_seconds / calls, 1e6 * engine_seconds / calls,
                speedup, max_rel_diff,
                max_rel_diff <= kTolerance ? "true" : "false");

  std::cout << json << "\n";
  std::ofstream out("BENCH_engine.json");
  out << json << "\n";

  if (max_rel_diff > kTolerance) {
    std::cerr << "FAIL: engine and fresh paths disagree (max rel diff "
              << max_rel_diff << ")\n";
    return 1;
  }
  return 0;
}
