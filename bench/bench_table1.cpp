// E2: reproduces Table 1 - "Measured inaccuracy for throughput and period
// as compared with simulation results", averaged over the use-cases, plus
// the complexity column.
//
// Default run samples --per-size use-cases per cardinality; pass --full to
// enumerate all 2^N - 1 use-cases exactly as the paper does (minutes of
// runtime, dominated by the 500k-cycle reference simulations).
//
// Expected shape (paper, Table 1):
//   Worst Case    : throughput ~49%, period ~112%  (conservative, O(n))
//   Composability : ~4%, ~14%                      (O(n))
//   Fourth Order  : ~0.7%, ~13%                    (O(n^4))
//   Second Order  : ~2.8%, ~11%                    (O(n^2))
#include <iostream>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace procon;
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys = bench::make_workload(opts);
  const auto use_cases = bench::make_use_cases(opts, sys.app_count());

  std::cout << "=== E2 / Table 1: mean absolute inaccuracy vs simulation over "
            << use_cases.size() << " use-cases"
            << (opts.full ? " (full enumeration)" : " (sampled; --full for all)")
            << " ===\n\n";

  const auto& techniques = bench::paper_techniques();
  std::vector<util::RunningStats> throughput_err(techniques.size());
  std::vector<util::RunningStats> period_err(techniques.size());
  std::size_t skipped = 0;

  // One session: engine structure is paid once, not per (use-case, technique).
  api::Workbench wb(sys, api::WorkbenchOptions{.threads = 1});
  // One simulation engine, reset per use-case (no restrict_to copies).
  sim::SimEngine sim_engine(sys);

  bench::Stopwatch total;
  for (const auto& uc : use_cases) {
    const bench::SimReference sim =
        bench::simulate_reference(sim_engine, uc, opts.horizon);
    bool ok = true;
    for (const bool c : sim.converged) ok = ok && c;
    if (!ok) {
      ++skipped;
      continue;
    }
    for (std::size_t t = 0; t < techniques.size(); ++t) {
      const auto est = bench::estimate_periods(wb, uc, techniques[t]);
      for (std::size_t i = 0; i < est.size(); ++i) {
        period_err[t].add(util::percent_abs_diff(est[i], sim.average[i]));
        throughput_err[t].add(
            util::percent_abs_diff(1.0 / est[i], 1.0 / sim.average[i]));
      }
    }
  }

  util::Table table("Table 1: inaccuracy in percent (mean absolute difference)");
  table.set_header({"Method", "Throughput", "Period", "Complexity"});
  const std::vector<std::string> complexity{"O(n)", "O(n)", "O(n^4)", "O(n^2)"};
  for (std::size_t t = 0; t < techniques.size(); ++t) {
    table.add_row({techniques[t].label,
                   util::format_double(throughput_err[t].mean(), 1),
                   util::format_double(period_err[t].mean(), 1), complexity[t]});
  }
  bench::emit(table, opts, "table1_inaccuracy");

  if (skipped > 0) {
    std::cout << "note: " << skipped
              << " use-cases skipped (simulation unconverged within horizon)\n";
  }
  std::cout << "total wall-clock: " << util::format_double(total.seconds(), 1)
            << " s over " << use_cases.size() << " use-cases\n";
  return 0;
}
