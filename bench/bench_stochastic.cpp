// E6 (extension): stochastic execution times, the paper's Section 6
// future-work item - "the approach can be easily extended to varying
// execution times ... [that] follow a probabilistic distribution".
//
// Sweeps the relative execution-time jitter (+-0%, 10%, ..., 50% uniform
// around the nominal times) on the standard 10-application workload's
// full-contention use-case, and reports the inaccuracy of (a) the naive
// deterministic estimator fed with mean times and (b) the stochastic
// estimator using residual-life blocking times, both against the sampling
// simulator. Expected shape: both track the simulation; the residual-life
// model should not be worse, and the gap grows with jitter (mu rises above
// tau/2 as variance grows).
#include <iostream>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace procon;
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys = bench::make_workload(opts);

  std::cout << "=== E6 (extension): estimation accuracy vs execution-time "
               "jitter, all " << opts.apps << " apps concurrent ===\n\n";

  util::Table table("Period inaccuracy vs sampling simulation (percent)");
  table.set_header({"jitter", "deterministic (tau/2)", "stochastic (residual)",
                    "mean sim slowdown"});

  for (const int jitter_pct : {0, 10, 20, 30, 40, 50}) {
    // Build the jittered models: uniform around each nominal time.
    std::vector<sdf::ExecTimeModel> models;
    for (const auto& g : sys.apps()) {
      sdf::ExecTimeModel m;
      for (const auto& a : g.actors()) {
        const sdf::Time d = a.exec_time * jitter_pct / 100;
        m.push_back(d == 0 ? sdf::ExecTimeDistribution::constant(a.exec_time)
                           : sdf::ExecTimeDistribution::uniform(a.exec_time - d,
                                                                a.exec_time + d));
      }
      models.push_back(std::move(m));
    }

    // Reference: sampling simulation.
    sim::SimOptions sopts{.horizon = opts.horizon};
    sopts.exec_models = models;
    sopts.sample_seed = opts.seed;
    const auto sim = sim::simulate(sys, sopts);

    // Estimators (second order): deterministic vs stochastic loads.
    const prob::ContentionEstimator est(
        prob::EstimatorOptions{.method = prob::Method::SecondOrder});
    const auto det = est.estimate(platform::SystemView(sys));
    const auto sto = est.estimate(platform::SystemView(sys), models);

    util::RunningStats err_det, err_sto, slowdown;
    for (std::size_t i = 0; i < sim.apps.size(); ++i) {
      if (!sim.apps[i].converged) continue;
      err_det.add(util::percent_abs_diff(det[i].estimated_period,
                                         sim.apps[i].average_period));
      err_sto.add(util::percent_abs_diff(sto[i].estimated_period,
                                         sim.apps[i].average_period));
      slowdown.add(sim.apps[i].average_period / det[i].isolation_period);
    }
    table.add_row({"+-" + std::to_string(jitter_pct) + "%",
                   util::format_double(err_det.mean(), 1),
                   util::format_double(err_sto.mean(), 1),
                   util::format_double(slowdown.mean(), 2)});
  }
  bench::emit(table, opts, "stochastic_jitter");
  return 0;
}
