// A1: ablation over the approximation order m of Equation 4/5.
//
// The paper evaluates m = 2 and m = 4 and derives that complexity grows as
// O(n^m). This bench sweeps m = 1..8 plus the exact evaluation on the same
// use-cases, reporting the mean absolute period inaccuracy vs simulation.
// Expected shape: even orders approach the exact value from above, odd
// orders from below; beyond m ~ 4 the gain is marginal - the paper's reason
// for stopping at fourth order.
#include <iostream>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace procon;
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys = bench::make_workload(opts);
  const auto use_cases = bench::make_use_cases(opts, sys.app_count());

  std::cout << "=== A1: approximation-order ablation over " << use_cases.size()
            << " use-cases ===\n\n";

  constexpr int kMaxOrder = 8;
  std::vector<util::RunningStats> err(kMaxOrder + 2);  // [1..8] + exact at [0]
  std::vector<util::RunningStats> vs_exact(kMaxOrder + 1);

  sim::SimEngine sim_engine(sys);
  // Zero-copy restrictions for the whole sweep: the estimators read through
  // views, the reference simulation through the shared engine's remap tables.
  const auto views = gen::restrict_views(sys, use_cases);
  for (std::size_t u = 0; u < use_cases.size(); ++u) {
    const platform::UseCase& uc = use_cases[u];
    const platform::SystemView& sub = views[u];
    const bench::SimReference sim =
        bench::simulate_reference(sim_engine, uc, opts.horizon);
    bool ok = true;
    for (const bool c : sim.converged) ok = ok && c;
    if (!ok) continue;

    const auto exact = prob::ContentionEstimator(
                           prob::EstimatorOptions{.method = prob::Method::Exact})
                           .estimate(sub);
    for (std::size_t i = 0; i < exact.size(); ++i) {
      err[0].add(util::percent_abs_diff(exact[i].estimated_period, sim.average[i]));
    }
    for (int m = 1; m <= kMaxOrder; ++m) {
      const auto est =
          prob::ContentionEstimator(
              prob::EstimatorOptions{.method = prob::Method::MthOrder, .order = m})
              .estimate(sub);
      for (std::size_t i = 0; i < est.size(); ++i) {
        err[static_cast<std::size_t>(m)].add(
            util::percent_abs_diff(est[i].estimated_period, sim.average[i]));
        vs_exact[static_cast<std::size_t>(m)].add(util::percent_abs_diff(
            est[i].estimated_period, exact[i].estimated_period));
      }
    }
  }

  util::Table table("Order ablation: period inaccuracy vs simulation and vs exact Eq. 4");
  table.set_header({"Order m", "vs simulation [%]", "vs exact Eq.4 [%]",
                    "Complexity"});
  for (int m = 1; m <= kMaxOrder; ++m) {
    table.add_row({std::to_string(m),
                   util::format_double(err[static_cast<std::size_t>(m)].mean(), 2),
                   util::format_double(vs_exact[static_cast<std::size_t>(m)].mean(), 3),
                   "O(n^" + std::to_string(m) + ")"});
  }
  table.add_row({"exact", util::format_double(err[0].mean(), 2), "0.000",
                 "O(n^2) via symmetric-poly DP"});
  bench::emit(table, opts, "ablation_order");
  return 0;
}
