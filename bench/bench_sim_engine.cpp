// SimEngine reset+run vs cold rebuild, and SystemView vs restrict_to.
//
// Three comparisons, each with bitwise identity checks against the
// pre-refactor path (restrict_to copy + from-scratch simulator build):
//
//  1. per-use-case reference sweep: cold = SimEngine(sys.restrict_to(uc))
//     built per use-case (what sim::simulate(sys, uc) used to cost) vs
//     warm = one shared engine, reset(uc) + run per use-case;
//  2. stochastic replications: the same use-case simulated with R sample
//     seeds (the Section 6 validation pattern) — cold rebuilds per
//     replication, warm only resets;
//  3. restriction cost: System::restrict_to deep copy vs zero-copy
//     SystemView construction per use-case (the allocation sweep_use_cases
//     no longer pays).
//
// The engine comparison targets the short reference runs of validation
// sweeps and admission what-ifs, so the horizon is capped at 4000 cycles
// here (pass --horizon below that to lower it further); long-horizon
// simulation cost is tracked by bench_timing. Runs on the paper workload
// (--seed) and a second 10-app random system (--seed ^ 0x517).
//
// Emits BENCH_sim_engine.json so the perf trajectory is tracked per PR.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "harness.h"

namespace {

using namespace procon;

bool same_result(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.apps.size() != b.apps.size() ||
      a.events_processed != b.events_processed ||
      a.node_utilisation != b.node_utilisation || a.horizon != b.horizon) {
    return false;
  }
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const auto& x = a.apps[i];
    const auto& y = b.apps[i];
    if (x.iterations != y.iterations || x.converged != y.converged ||
        x.average_period != y.average_period || x.worst_period != y.worst_period ||
        x.iteration_times != y.iteration_times ||
        x.actors.size() != y.actors.size()) {
      return false;
    }
    for (std::size_t k = 0; k < x.actors.size(); ++k) {
      if (x.actors[k].firings != y.actors[k].firings ||
          x.actors[k].total_waiting != y.actors[k].total_waiting ||
          x.actors[k].total_service != y.actors[k].total_service) {
        return false;
      }
    }
  }
  return true;
}

struct SweepNumbers {
  double cold_us_per_uc = 0.0;
  double warm_us_per_uc = 0.0;
  double restrict_us_per_uc = 0.0;
  double view_us_per_uc = 0.0;
  bool identical = true;
};

SweepNumbers sweep(const platform::System& sys,
                   const std::vector<platform::UseCase>& use_cases,
                   const sim::SimOptions& sopts) {
  SweepNumbers n;
  const auto count = static_cast<double>(use_cases.size());

  std::vector<sim::SimResult> cold_results;
  cold_results.reserve(use_cases.size());
  bench::Stopwatch cold_clock;
  for (const auto& uc : use_cases) {
    // The pre-refactor per-use-case path: deep copy, flatten, validate, run.
    sim::SimEngine engine(sys.restrict_to(uc));
    cold_results.push_back(engine.run(sopts));
  }
  n.cold_us_per_uc = 1e6 * cold_clock.seconds() / count;

  sim::SimEngine shared(sys);
  bench::Stopwatch warm_clock;
  for (std::size_t i = 0; i < use_cases.size(); ++i) {
    shared.reset(use_cases[i]);
    const sim::SimResult r = shared.run(sopts);
    n.identical = n.identical && same_result(r, cold_results[i]);
  }
  n.warm_us_per_uc = 1e6 * warm_clock.seconds() / count;

  bench::Stopwatch restrict_clock;
  for (const auto& uc : use_cases) {
    const platform::System sub = sys.restrict_to(uc);
    (void)sub.app_count();
  }
  n.restrict_us_per_uc = 1e6 * restrict_clock.seconds() / count;

  bench::Stopwatch view_clock;
  for (const auto& uc : use_cases) {
    const platform::SystemView view(sys, uc);
    (void)view.actor_count();
  }
  n.view_us_per_uc = 1e6 * view_clock.seconds() / count;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sdf::Time horizon = std::min<sdf::Time>(opts.horizon, 4000);
  sim::SimOptions sopts;
  sopts.horizon = horizon;

  const platform::System paper = bench::make_workload(opts);
  bench::Options alt = opts;
  alt.seed = opts.seed ^ 0x517;
  alt.apps = 10;
  const platform::System random10 = bench::make_workload(alt);

  const auto paper_ucs = bench::make_use_cases(opts, paper.app_count());
  const auto random_ucs = bench::make_use_cases(alt, random10.app_count());

  std::cout << "=== SimEngine reset+run vs cold rebuild (horizon " << horizon
            << ", " << paper_ucs.size() << " + " << random_ucs.size()
            << " use-cases) ===\n";

  const SweepNumbers p = sweep(paper, paper_ucs, sopts);
  const SweepNumbers r = sweep(random10, random_ucs, sopts);

  // Stochastic replications of one mid-size use-case (paper workload):
  // jittered execution times, one run per sample seed.
  const platform::UseCase rep_uc = paper_ucs[paper_ucs.size() / 2];
  sim::SimOptions ropts = sopts;
  for (const sdf::AppId id : rep_uc) {
    const sdf::Graph& g = paper.app(id);
    sdf::ExecTimeModel m;
    for (const auto& a : g.actors()) {
      const sdf::Time d = a.exec_time / 10;
      m.push_back(d == 0 ? sdf::ExecTimeDistribution::constant(a.exec_time)
                         : sdf::ExecTimeDistribution::uniform(a.exec_time - d,
                                                              a.exec_time + d));
    }
    ropts.exec_models.push_back(std::move(m));
  }
  constexpr int kReps = 32;
  std::vector<sim::SimResult> rep_cold;
  bench::Stopwatch rep_cold_clock;
  for (int k = 0; k < kReps; ++k) {
    ropts.sample_seed = opts.seed + static_cast<std::uint64_t>(k);
    sim::SimEngine engine(paper.restrict_to(rep_uc));
    rep_cold.push_back(engine.run(ropts));
  }
  const double rep_cold_us = 1e6 * rep_cold_clock.seconds() / kReps;

  bool rep_identical = true;
  sim::SimEngine rep_engine(paper);
  bench::Stopwatch rep_warm_clock;
  for (int k = 0; k < kReps; ++k) {
    ropts.sample_seed = opts.seed + static_cast<std::uint64_t>(k);
    rep_engine.reset(rep_uc);
    rep_identical =
        rep_identical && same_result(rep_engine.run(ropts),
                                     rep_cold[static_cast<std::size_t>(k)]);
  }
  const double rep_warm_us = 1e6 * rep_warm_clock.seconds() / kReps;

  const bool identical = p.identical && r.identical && rep_identical;
  const double sweep_speedup =
      (p.warm_us_per_uc + r.warm_us_per_uc) > 0.0
          ? (p.cold_us_per_uc + r.cold_us_per_uc) /
                (p.warm_us_per_uc + r.warm_us_per_uc)
          : 0.0;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"sim_engine\",\"seed\":%llu,\"horizon\":%lld,"
      "\"use_cases\":%zu,"
      "\"paper_cold_us\":%.2f,\"paper_warm_us\":%.2f,"
      "\"random10_cold_us\":%.2f,\"random10_warm_us\":%.2f,"
      "\"sweep_speedup\":%.2f,"
      "\"replication_cold_us\":%.2f,\"replication_warm_us\":%.2f,"
      "\"replication_speedup\":%.2f,"
      "\"restrict_copy_us\":%.3f,\"view_us\":%.3f,\"restrict_speedup\":%.1f,"
      "\"identical\":%s}",
      static_cast<unsigned long long>(opts.seed),
      static_cast<long long>(horizon), paper_ucs.size() + random_ucs.size(),
      p.cold_us_per_uc, p.warm_us_per_uc, r.cold_us_per_uc, r.warm_us_per_uc,
      sweep_speedup, rep_cold_us, rep_warm_us,
      rep_warm_us > 0.0 ? rep_cold_us / rep_warm_us : 0.0,
      (p.restrict_us_per_uc + r.restrict_us_per_uc) / 2.0,
      (p.view_us_per_uc + r.view_us_per_uc) / 2.0,
      p.view_us_per_uc + r.view_us_per_uc > 0.0
          ? (p.restrict_us_per_uc + r.restrict_us_per_uc) /
                (p.view_us_per_uc + r.view_us_per_uc)
          : 0.0,
      identical ? "true" : "false");

  std::cout << json << "\n";
  std::ofstream out("BENCH_sim_engine.json");
  out << json << "\n";

  if (!identical) {
    std::cerr << "FAIL: SimEngine reset+run disagrees with cold rebuild\n";
    return 1;
  }
  return 0;
}
