// E4: reproduces the Section 5 timing claim - "the simulation of all
// possible use-cases ... took a total of 23 hours ... analysis for all four
// approaches was completed in only about 10 minutes", i.e. a >= 100x gap,
// with the estimation (waiting-time) step itself taking negligible time
// compared to the per-use-case throughput computation.
//
// Absolute seconds differ from the paper's 2007-era Pentium 4; the claim
// under reproduction is the *ratio* between simulation and analysis.
#include <iostream>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace procon;
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys = bench::make_workload(opts);
  const auto use_cases = bench::make_use_cases(opts, sys.app_count());

  std::cout << "=== E4: analysis vs simulation wall-clock over "
            << use_cases.size() << " use-cases ===\n\n";

  // Simulation reference timing (shared engine, reset per use-case).
  bench::Stopwatch sim_clock;
  std::size_t sim_apps = 0;
  sim::SimEngine sim_engine(sys);
  for (const auto& uc : use_cases) {
    const auto r = bench::simulate_reference(sim_engine, uc, opts.horizon);
    sim_apps += r.average.size();
  }
  const double sim_seconds = sim_clock.seconds();

  // Analysis timing per technique (estimation + throughput recomputation),
  // through one session whose engines are cached across every use-case.
  api::Workbench wb(sys, api::WorkbenchOptions{.threads = 1});
  util::Table table("Timing: four analysis techniques vs simulation");
  table.set_header({"Method", "wall-clock [s]", "per use-case [ms]",
                    "speedup vs simulation"});
  for (const auto& t : bench::paper_techniques()) {
    bench::Stopwatch clock;
    for (const auto& uc : use_cases) {
      (void)bench::estimate_periods(wb, uc, t);
    }
    const double s = clock.seconds();
    table.add_row({t.label, util::format_double(s, 2),
                   util::format_double(1000.0 * s / static_cast<double>(use_cases.size()), 2),
                   util::format_double(sim_seconds / std::max(s, 1e-9), 0) + "x"});
  }
  table.add_row({"Simulation (reference)", util::format_double(sim_seconds, 2),
                 util::format_double(1000.0 * sim_seconds /
                                         static_cast<double>(use_cases.size()), 2),
                 "1x"});
  bench::emit(table, opts, "timing");

  std::cout << "simulated " << sim_apps << " application instances at horizon "
            << opts.horizon << "\n";
  return 0;
}
