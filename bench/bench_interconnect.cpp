// Interconnect tier: per-topology cost and accuracy of the routed pipeline,
// plus the backward-compatibility identity check — the PR-over-PR tracker
// for the "topology None is bitwise free" contract.
//
// On the paper workload, sweeps {None, bus, ring, mesh (when the node count
// is even)} through api::Workbench::sweep_topologies twice: cold (first
// sight of every topology builds its routed SimEngine) and warm (every
// engine comes from the fingerprint-keyed LRU cache). Reports per-topology
// estimator slowdown vs the isolation baseline, mean simulated link
// utilisation, and the sim-vs-estimator percent error.
//
// The "identical" flag asserts two identities at once:
//  1. the sweep's None entry is bitwise equal to a plain (topology-free)
//     SimEngine run and estimator pass — attaching kind None costs nothing;
//  2. the warm sweep reproduces the cold sweep bitwise — the per-topology
//     engine cache is correctness-neutral.
//
// Emits BENCH_interconnect.json; CI smoke-runs it and the committed copy
// feeds the README performance cookbook.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"
#include "platform/topology.h"

namespace {

using namespace procon;

bool same_sim(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.apps.size() != b.apps.size() ||
      a.events_processed != b.events_processed || a.horizon != b.horizon ||
      a.node_utilisation != b.node_utilisation ||
      a.link_utilisation != b.link_utilisation) {
    return false;
  }
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    if (a.apps[i].iterations != b.apps[i].iterations ||
        a.apps[i].average_period != b.apps[i].average_period ||
        a.apps[i].worst_period != b.apps[i].worst_period ||
        a.apps[i].iteration_times != b.apps[i].iteration_times) {
      return false;
    }
  }
  return true;
}

bool same_estimates(const std::vector<prob::AppEstimate>& a,
                    const std::vector<prob::AppEstimate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].isolation_period != b[i].isolation_period ||
        a[i].estimated_period != b[i].estimated_period) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sdf::Time horizon = std::min<sdf::Time>(opts.horizon, 100'000);

  const platform::System sys = bench::make_workload(opts);
  const std::size_t nodes = sys.platform().node_count();

  std::vector<std::string> labels{"none", "bus", "ring"};
  std::vector<platform::Topology> topologies;
  topologies.emplace_back();  // kind None: the identity entry
  topologies.push_back(platform::Topology::bus(nodes, 4, 1));
  topologies.push_back(platform::Topology::ring(nodes, 2, 1));
  if (nodes % 2 == 0 && nodes >= 4) {
    labels.emplace_back("mesh");
    topologies.push_back(platform::Topology::mesh(2, nodes / 2, 2, 1));
  }

  api::Workbench wb(sys);
  api::TopologySweepOptions topts;
  topts.sim.horizon = horizon;

  bench::Stopwatch cold_clock;
  const auto cold = wb.sweep_topologies(topologies, topts);
  const double cold_us =
      1e6 * cold_clock.seconds() / static_cast<double>(topologies.size());

  bench::Stopwatch warm_clock;
  const auto warm = wb.sweep_topologies(topologies, topts);
  const double warm_us =
      1e6 * warm_clock.seconds() / static_cast<double>(topologies.size());

  // Identity 1: the None entry == the plain, topology-free pipeline.
  sim::SimEngine plain(sys);
  plain.reset();
  const sim::SimResult plain_sim = plain.run(topts.sim);
  const prob::ContentionEstimator est(topts.estimator);
  const auto plain_est = est.estimate(platform::SystemView(sys));
  bool identical = same_sim(cold.value[0].sim, plain_sim) &&
                   same_estimates(cold.value[0].estimates, plain_est);

  // Identity 2: warm sweep == cold sweep, entry by entry.
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    identical = identical && same_sim(cold.value[i].sim, warm.value[i].sim) &&
                same_estimates(cold.value[i].estimates, warm.value[i].estimates);
  }

  std::ostringstream json;
  json << "{\"bench\":\"interconnect\",\"seed\":" << opts.seed
       << ",\"apps\":" << sys.app_count() << ",\"nodes\":" << nodes
       << ",\"horizon\":" << horizon
       << ",\"sweep_cold_us\":" << cold_us << ",\"sweep_warm_us\":" << warm_us
       << ",\"sweep_speedup\":" << (warm_us > 0.0 ? cold_us / warm_us : 0.0)
       << ",\"topologies\":[";
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    const api::TopologyResult& r = cold.value[i];
    double slowdown = 0.0;
    double err_pct = 0.0;
    for (std::size_t a = 0; a < r.estimates.size(); ++a) {
      slowdown += r.estimates[a].estimated_period /
                  plain_est[a].estimated_period;
      err_pct += util::percent_abs_diff(r.estimates[a].estimated_period,
                                        r.sim.apps[a].average_period);
    }
    const auto apps = static_cast<double>(r.estimates.size());
    double util = 0.0;
    for (const double u : r.sim.link_utilisation) util += u;
    if (!r.sim.link_utilisation.empty()) {
      util /= static_cast<double>(r.sim.link_utilisation.size());
    }
    if (i > 0) json << ",";
    json << "{\"kind\":\"" << labels[i] << "\",\"links\":"
         << topologies[i].link_count() << ",\"est_slowdown\":" << slowdown / apps
         << ",\"mean_link_util\":" << util
         << ",\"sim_vs_est_err_pct\":" << err_pct / apps << "}";
  }
  json << "],\"identical\":" << (identical ? "true" : "false") << "}";

  std::cout << json.str() << "\n";
  std::ofstream out("BENCH_interconnect.json");
  out << json.str() << "\n";

  if (!identical) {
    std::cerr << "FAIL: topology None diverged from the topology-free "
                 "pipeline, or the warm sweep diverged from the cold one\n";
    return 1;
  }
  return 0;
}
