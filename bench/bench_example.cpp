// E5: reproduces the worked example of Section 3 / Figures 2-3.
//
// Prints the blocking probabilities, average blocking times, waiting times,
// response times and the estimated vs simulated periods for the two
// three-actor SDFGs A and B sharing Proc0..Proc2, including the
// reversed-cycle variant whose simulated period is 400 while every
// probabilistic attribute is unchanged.
#include <iostream>
#include <vector>

#include "harness.h"
#include "prob/load.h"
#include "sdf/repetition.h"

namespace {

using namespace procon;  // bench binary: brevity over hygiene

sdf::Graph graph_a() {
  sdf::Graph g("A");
  const auto a0 = g.add_actor("a0", 100);
  const auto a1 = g.add_actor("a1", 50);
  const auto a2 = g.add_actor("a2", 100);
  g.add_channel(a0, a1, 2, 1, 0);
  g.add_channel(a1, a2, 1, 2, 0);
  g.add_channel(a2, a0, 1, 1, 1);
  return g;
}

sdf::Graph graph_b(bool reversed) {
  sdf::Graph g(reversed ? "B-reversed" : "B");
  const auto b0 = g.add_actor("b0", 50);
  const auto b1 = g.add_actor("b1", 100);
  const auto b2 = g.add_actor("b2", 100);
  if (!reversed) {
    g.add_channel(b0, b1, 1, 2, 0);
    g.add_channel(b1, b2, 1, 1, 0);
    g.add_channel(b2, b0, 2, 1, 2);
  } else {
    g.add_channel(b1, b0, 2, 1, 0);
    g.add_channel(b2, b1, 1, 1, 0);
    g.add_channel(b0, b2, 1, 2, 2);
  }
  return g;
}

platform::System make_system(bool reversed) {
  std::vector<sdf::Graph> apps{graph_a(), graph_b(reversed)};
  platform::Platform plat = platform::Platform::homogeneous(3);
  platform::Mapping map = platform::Mapping::by_index(apps, plat);
  return platform::System(std::move(apps), std::move(plat), std::move(map));
}

void run(const bench::Options& opts, bool reversed) {
  const platform::System sys = make_system(reversed);

  util::Table attrs(std::string("Section 3 example") +
                    (reversed ? " (cycle of B reversed)" : "") +
                    ": per-actor attributes and estimates");
  attrs.set_header({"actor", "tau", "q", "P(a)", "mu(a)", "t_wait", "response"});

  const prob::ContentionEstimator est;
  const auto estimates = est.estimate(platform::SystemView(sys));
  for (sdf::AppId i = 0; i < sys.app_count(); ++i) {
    const sdf::Graph& g = sys.app(i);
    const auto q = sdf::compute_repetition_vector(g);
    const auto loads = prob::derive_loads(g, *q, estimates[i].isolation_period);
    for (sdf::ActorId a = 0; a < g.actor_count(); ++a) {
      attrs.add_row({g.actor(a).name, std::to_string(g.actor(a).exec_time),
                     std::to_string((*q)[a]),
                     util::format_double(loads[a].probability, 4),
                     util::format_double(loads[a].mean_blocking, 1),
                     util::format_double(estimates[i].actors[a].waiting_time, 2),
                     util::format_double(estimates[i].actors[a].response_time, 2)});
    }
  }
  std::cout << attrs.render() << '\n';

  const bench::SimReference sim = bench::simulate_reference(sys, opts.horizon);
  util::Table periods("Periods: estimate vs simulation");
  periods.set_header({"app", "isolation", "estimated", "simulated", "sim worst"});
  for (sdf::AppId i = 0; i < sys.app_count(); ++i) {
    periods.add_row({sys.app(i).name(),
                     util::format_double(estimates[i].isolation_period, 2),
                     util::format_double(estimates[i].estimated_period, 2),
                     util::format_double(sim.average[i], 2),
                     util::format_double(sim.worst[i], 2)});
  }
  bench::emit(periods, opts,
              reversed ? "example_periods_reversed" : "example_periods");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts = bench::parse_options(argc, argv);
  std::cout << "=== E5: Section 3.1 worked example ===\n"
            << "Paper: P(ai) = P(bi) = 1/3; twait[b0 b1 b2] = [16.7 8.3 16.7];\n"
            << "estimated period 358.3 (\"359\"); simulated period 300, and 400\n"
            << "for the reversed cycle - the estimate lies between the two.\n\n";
  run(opts, /*reversed=*/false);
  run(opts, /*reversed=*/true);
  return 0;
}
