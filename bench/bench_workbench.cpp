// Workbench sharding and incremental-DSE speedups.
//
// Two comparisons on the paper workload, both with bitwise identity checks
// (the parallel / incremental paths must return the same bits as the
// serial / per-candidate references):
//
//  1. use-case sweep: Workbench::sweep_use_cases with 1 thread vs one
//     worker per hardware thread, over the --per-size sampled (or --full
//     enumerated) use-case list;
//  2. buffer exploration: explore_buffer_tradeoff engine-per-candidate
//     (incremental = false) vs the incremental reverse-channel patch, per
//     application, plus a mapper determinism probe (1 thread == N threads).
//
// Emits BENCH_workbench.json so the perf trajectory is tracked per PR.
//
// Flags: the common harness set (--seed, --apps, --per-size, --full, ...).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "api/workbench.h"
#include "harness.h"

namespace {

using namespace procon;

bool same_estimates(const std::vector<api::UseCaseResult>& a,
                    const std::vector<api::UseCaseResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].estimates.size() != b[i].estimates.size()) return false;
    for (std::size_t j = 0; j < a[i].estimates.size(); ++j) {
      if (a[i].estimates[j].estimated_period != b[i].estimates[j].estimated_period ||
          a[i].estimates[j].isolation_period != b[i].estimates[j].isolation_period) {
        return false;
      }
    }
  }
  return true;
}

bool same_frontier(const std::vector<dse::BufferPoint>& a,
                   const std::vector<dse::BufferPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].capacities != b[i].capacities || a[i].period != b[i].period) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys = bench::make_workload(opts);
  const auto use_cases = bench::make_use_cases(opts, sys.app_count());

  // --- 1. use-case sweep: 1 thread vs hardware threads ----------------------
  // At least 4 workers even on small machines, so the determinism checks
  // always exercise genuinely concurrent scheduling.
  const std::size_t kThreads = std::max<std::size_t>(
      4, std::thread::hardware_concurrency());
  api::Workbench serial(sys, api::WorkbenchOptions{.threads = 1});
  api::Workbench parallel(sys, api::WorkbenchOptions{.threads = kThreads});

  // Warm both sessions (engine clones, pool) outside the timed region.
  (void)serial.sweep_use_cases(std::span(use_cases.data(), 1));
  (void)parallel.sweep_use_cases(std::span(use_cases.data(), 1));

  const auto swept_serial = serial.sweep_use_cases(use_cases);
  const auto swept_parallel = parallel.sweep_use_cases(use_cases);
  const bool sweep_identical = same_estimates(*swept_serial, *swept_parallel);
  const double sweep_speedup =
      swept_parallel.provenance.wall_ms > 0.0
          ? swept_serial.provenance.wall_ms / swept_parallel.provenance.wall_ms
          : 0.0;

  // --- 2. buffer exploration: per-candidate vs incremental ------------------
  double percand_ms = 0.0, incremental_ms = 0.0;
  bool buffers_identical = true;
  for (sdf::AppId i = 0; i < sys.app_count(); ++i) {
    dse::BufferExplorerOptions bopts;
    bopts.incremental = false;
    bench::Stopwatch percand_watch;
    const auto reference = dse::explore_buffer_tradeoff(sys.app(i), bopts);
    percand_ms += 1000.0 * percand_watch.seconds();

    bopts.incremental = true;
    bench::Stopwatch inc_watch;
    const auto incremental = dse::explore_buffer_tradeoff(sys.app(i), bopts);
    incremental_ms += 1000.0 * inc_watch.seconds();

    buffers_identical = buffers_identical && same_frontier(reference, incremental);
  }
  const double buffer_speedup = incremental_ms > 0.0 ? percand_ms / incremental_ms : 0.0;

  // --- 3. mapper determinism probe ------------------------------------------
  dse::MapperOptions mopts;
  mopts.iterations = 300;
  mopts.seed = opts.seed;
  const auto mapped_serial = serial.optimise_mapping(mopts);
  const auto mapped_parallel = parallel.optimise_mapping(mopts);
  bool mapper_deterministic =
      mapped_serial->score == mapped_parallel->score &&
      mapped_serial->accepted_moves == mapped_parallel->accepted_moves &&
      mapped_serial->evaluations == mapped_parallel->evaluations;
  if (mapper_deterministic) {
    for (sdf::AppId i = 0; i < sys.app_count() && mapper_deterministic; ++i) {
      for (sdf::ActorId a = 0; a < sys.app(i).actor_count(); ++a) {
        if (mapped_serial->mapping.node_of(i, a) !=
            mapped_parallel->mapping.node_of(i, a)) {
          mapper_deterministic = false;
          break;
        }
      }
    }
  }

  char json[768];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"workbench\",\"seed\":%llu,\"apps\":%zu,"
      "\"use_cases\":%zu,\"threads\":%zu,"
      "\"sweep_serial_ms\":%.3f,\"sweep_parallel_ms\":%.3f,"
      "\"sweep_speedup\":%.2f,\"sweep_identical\":%s,"
      "\"buffer_percandidate_ms\":%.3f,\"buffer_incremental_ms\":%.3f,"
      "\"buffer_speedup\":%.2f,\"buffer_identical\":%s,"
      "\"mapper_deterministic\":%s}",
      static_cast<unsigned long long>(opts.seed), sys.app_count(),
      use_cases.size(), parallel.thread_count(),
      swept_serial.provenance.wall_ms, swept_parallel.provenance.wall_ms,
      sweep_speedup, sweep_identical ? "true" : "false", percand_ms,
      incremental_ms, buffer_speedup, buffers_identical ? "true" : "false",
      mapper_deterministic ? "true" : "false");

  std::cout << json << "\n";
  std::ofstream out("BENCH_workbench.json");
  out << json << "\n";

  if (!sweep_identical || !buffers_identical || !mapper_deterministic) {
    std::cerr << "FAIL: parallel/incremental paths disagree with references\n";
    return 1;
  }
  return 0;
}
