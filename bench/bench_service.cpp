// api::AnalysisService under load: multi-client scaling, coalescing, and
// the streaming-sweep allocation contract — the PR-over-PR tracker for the
// service front door.
//
// Three measurements on the paper workload (two tenant systems):
//
//  1. streaming vs deep-copy sweeps (single-threaded): the same use-case
//     list swept through the sink API (views into session arenas) and the
//     vector API (owning copies), both warm. The sink sweep's allocation
//     count per use-case must be ZERO; the vector sweep's count is the
//     baseline it saves. Results are checked identical.
//
//  2. queries/sec vs client count: N client threads submit distinct
//     contention/wcrt/throughput tickets over both tenants; wall-clock
//     throughput is reported per client count.
//
//  3. coalesce hit rate: every client submits the *same* query in a tight
//     loop; the service should serve most of them from in-flight twins
//     (hit rate = coalesced / submitted).
//
// Emits BENCH_service.json; CI smoke-runs it and the committed copy feeds
// the README performance cookbook.
#include "util/alloc_probe.h"  // FIRST: replaces global new/delete

#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "api/service.h"
#include "harness.h"

namespace {

using namespace procon;

/// Deep-copying sink: the identity oracle for the view sweep.
class CheckSink : public api::SweepSink {
 public:
  bool on_use_case(std::size_t, const api::UseCaseView& r) override {
    double sum = 0.0;
    for (const auto& e : r.estimates) sum += e.estimated_period;
    sums.push_back(sum);
    return true;
  }
  std::vector<double> sums;
};

/// Preallocated sink for the allocation bracket (must not allocate itself).
class QuietSink : public api::SweepSink {
 public:
  explicit QuietSink(std::size_t n) { sums.resize(n, 0.0); }
  bool on_use_case(std::size_t index, const api::UseCaseView& r) override {
    double sum = 0.0;
    for (const auto& e : r.estimates) sum += e.estimated_period;
    sums[index] = sum;
    return true;
  }
  std::vector<double> sums;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys_a = bench::make_workload(opts);
  bench::Options opts_b = opts;
  opts_b.seed = opts.seed + 1;
  const platform::System sys_b = bench::make_workload(opts_b);
  const auto use_cases = bench::make_use_cases(opts, sys_a.app_count());
  const auto uc_count = static_cast<double>(use_cases.size());
  bool identical = true;

  // ---- 1. streaming (view) vs deep-copy (vector) sweeps -------------------
  api::Workbench wb(sys_a, api::WorkbenchOptions{.threads = 1});
  api::SweepOptions sweep_opts;  // estimates only: the pure estimator sweep

  // Warm-up both paths, and keep the vector results as the identity oracle.
  QuietSink warm_sink(use_cases.size());
  (void)wb.sweep_use_cases(use_cases, sweep_opts, warm_sink);
  const auto oracle = wb.sweep_use_cases(use_cases, sweep_opts);

  QuietSink view_sink(use_cases.size());
  const std::uint64_t view_before = util::alloc_probe::allocations();
  bench::Stopwatch view_clock;
  (void)wb.sweep_use_cases(use_cases, sweep_opts, view_sink);
  const double sweep_view_us = 1e6 * view_clock.seconds() / uc_count;
  const std::uint64_t view_allocs =
      util::alloc_probe::allocations() - view_before;

  const std::uint64_t copy_before = util::alloc_probe::allocations();
  bench::Stopwatch copy_clock;
  const auto copied = wb.sweep_use_cases(use_cases, sweep_opts);
  const double sweep_copy_us = 1e6 * copy_clock.seconds() / uc_count;
  const std::uint64_t copy_allocs =
      util::alloc_probe::allocations() - copy_before;

  for (std::size_t i = 0; i < use_cases.size(); ++i) {
    double sum = 0.0;
    for (const auto& e : (*oracle)[i].estimates) sum += e.estimated_period;
    identical = identical && view_sink.sums[i] == sum;
    double copied_sum = 0.0;
    for (const auto& e : (*copied)[i].estimates) copied_sum += e.estimated_period;
    identical = identical && copied_sum == sum;
  }
  identical = identical && view_allocs == 0;

  // ---- 2. queries/sec vs client count -------------------------------------
  // Distinct queries (kind x use-case cycling) so coalescing stays out of
  // the scaling number; identity spot-checked against the oracle sweep.
  const std::size_t per_client = std::max<std::size_t>(use_cases.size(), 16);
  double qps[4] = {0, 0, 0, 0};
  const std::size_t client_counts[4] = {1, 2, 4, 8};
  for (int ci = 0; ci < 4; ++ci) {
    const std::size_t clients = client_counts[ci];
    api::AnalysisService service(
        api::ServiceOptions{.threads = 0, .session_capacity = 4});
    const api::SystemId a = service.register_system(sys_a);
    const api::SystemId b = service.register_system(sys_b);
    std::vector<std::vector<api::QueryTicket>> tickets(clients);
    bench::Stopwatch clock;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        tickets[c].reserve(per_client);
        for (std::size_t k = 0; k < per_client; ++k) {
          api::QueryDesc d;
          switch (k % 3) {
            case 0:
              d.kind = api::QueryKind::Contention;
              d.use_case = use_cases[k % use_cases.size()];
              break;
            case 1:
              d.kind = api::QueryKind::Wcrt;
              break;
            default:
              d.kind = api::QueryKind::Throughput;
              d.app = static_cast<sdf::AppId>(k % sys_a.app_count());
              break;
          }
          tickets[c].push_back(service.submit((c + k) % 2 == 0 ? a : b, d));
        }
        for (auto& t : tickets[c]) t.wait();
      });
    }
    for (auto& t : threads) t.join();
    qps[ci] =
        static_cast<double>(clients * per_client) / clock.seconds();
    // Spot-check: a contention ticket on tenant A equals the oracle sweep.
    const auto& v = tickets[0][0].get();
    const auto& est = std::get<api::Report<std::vector<prob::AppEstimate>>>(v);
    double sum = 0.0;
    for (const auto& e : *est) sum += e.estimated_period;
    double oracle_sum = 0.0;
    for (const auto& e : (*oracle)[0].estimates) oracle_sum += e.estimated_period;
    identical = identical && sum == oracle_sum;
  }

  // ---- 3. coalesce hit rate -----------------------------------------------
  double coalesce_rate = 0.0;
  {
    api::AnalysisService service(
        api::ServiceOptions{.threads = 2, .session_capacity = 2});
    const api::SystemId a = service.register_system(sys_a);
    constexpr std::size_t kClients = 8;
    constexpr std::size_t kRepeats = 32;
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&] {
        for (std::size_t k = 0; k < kRepeats; ++k) {
          api::QueryDesc d;
          d.kind = api::QueryKind::Contention;  // everyone asks the same thing
          auto t = service.submit(a, d);
          t.wait();
        }
      });
    }
    for (auto& t : threads) t.join();
    const auto stats = service.stats();
    // Shared rate: submits served without a fresh execution, whether by
    // attaching to an in-flight twin or from the completed-result arena
    // (the result cache now absorbs what pure coalescing used to race for).
    coalesce_rate =
        stats.submitted > 0
            ? static_cast<double>(stats.coalesced + stats.result_hits) /
                  static_cast<double>(stats.submitted)
            : 0.0;
    identical = identical && stats.submitted == stats.executed +
                                                    stats.coalesced +
                                                    stats.result_hits;
  }

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"service\",\"seed\":%llu,\"use_cases\":%zu,"
      "\"sweep_view_us\":%.2f,\"sweep_copy_us\":%.2f,"
      "\"sweep_view_allocs_per_uc\":%.1f,\"sweep_copy_allocs_per_uc\":%.1f,"
      "\"qps_clients_1\":%.0f,\"qps_clients_2\":%.0f,"
      "\"qps_clients_4\":%.0f,\"qps_clients_8\":%.0f,"
      "\"coalesce_hit_rate\":%.3f,\"identical\":%s}",
      static_cast<unsigned long long>(opts.seed), use_cases.size(),
      sweep_view_us, sweep_copy_us,
      static_cast<double>(view_allocs) / uc_count,
      static_cast<double>(copy_allocs) / uc_count, qps[0], qps[1], qps[2],
      qps[3], coalesce_rate, identical ? "true" : "false");

  std::cout << json << "\n";
  std::ofstream out("BENCH_service.json");
  out << json << "\n";

  if (!identical) {
    std::cerr << "FAIL: service results diverged from the serial oracle or "
                 "the warm view sweep allocated\n";
    return 1;
  }
  return 0;
}
