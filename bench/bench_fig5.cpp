// E1: reproduces Figure 5 - "Comparison of period computed using different
// analysis techniques as compared to simulation result (all 10 applications
// running concurrently)".
//
// For the maximum-contention use-case (every application active) this
// prints, per application, the period normalised to its isolation period:
//   Original (1.0 by construction), Analyzed Worst Case, Probabilistic
//   Fourth Order, Probabilistic Second Order, Composability-based,
//   Simulated (average), Simulated Worst Case.
//
// Expected shape (paper): the worst-case estimate towers over everything
// (up to ~12x); the three probabilistic estimates track the simulated
// period closely; simulated normalised periods range between ~3x and ~6x.
#include <iostream>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace procon;
  const bench::Options opts = bench::parse_options(argc, argv);
  const platform::System sys = bench::make_workload(opts);

  std::cout << "=== E1 / Figure 5: normalised periods, all " << opts.apps
            << " applications concurrent ===\n\n";

  // One session for every technique below.
  api::Workbench wb(sys, api::WorkbenchOptions{.threads = 1});
  const platform::UseCase full = sys.full_use_case();

  // Isolation periods ("Original").
  std::vector<double> original;
  const auto baseline = wb.contention();
  for (const auto& e : *baseline) {
    original.push_back(e.isolation_period);
  }

  // Analytic techniques.
  std::vector<std::vector<double>> estimates;  // [technique][app]
  for (const auto& t : bench::paper_techniques()) {
    estimates.push_back(bench::estimate_periods(wb, full, t));
  }

  // Simulation reference.
  const bench::SimReference sim = bench::simulate_reference(sys, opts.horizon);

  util::Table table("Figure 5: period normalised to isolation period");
  std::vector<std::string> header{"App", "Original"};
  for (const auto& t : bench::paper_techniques()) header.push_back(t.label);
  header.insert(header.end(), {"Simulated", "Simulated Worst Case"});
  table.set_header(header);

  for (sdf::AppId i = 0; i < sys.app_count(); ++i) {
    std::vector<std::string> row{sys.app(i).name(), "1.00"};
    for (std::size_t t = 0; t < estimates.size(); ++t) {
      row.push_back(util::format_double(estimates[t][i] / original[i], 2));
    }
    row.push_back(util::format_double(sim.average[i] / original[i], 2));
    row.push_back(util::format_double(sim.worst[i] / original[i], 2));
    if (!sim.converged[i]) row.back() += " (unconverged)";
    table.add_row(row);
  }
  bench::emit(table, opts, "fig5_normalised_periods");

  // Shape checks mirrored from the paper's discussion.
  double max_wc_over_sim = 0.0, max_prob_err = 0.0;
  for (sdf::AppId i = 0; i < sys.app_count(); ++i) {
    max_wc_over_sim = std::max(max_wc_over_sim, estimates[0][i] / sim.average[i]);
    for (std::size_t t = 1; t < estimates.size(); ++t) {
      max_prob_err = std::max(
          max_prob_err, util::percent_abs_diff(estimates[t][i], sim.average[i]));
    }
  }
  std::cout << "shape: worst-case bound is up to " << util::format_double(max_wc_over_sim, 1)
            << "x the simulated period; max probabilistic deviation "
            << util::format_double(max_prob_err, 1) << "%\n";
  return 0;
}
