// A2: scalability ablation - the claim that the composability approach
// supports O(n) incremental updates when applications enter the analysis,
// versus O(n^2) full recomputation for the second-order approximation
// (Section 4.2), and overall estimator cost as the number of applications
// grows well beyond the paper's ten.
#include <iostream>

#include "admission/admission.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace procon;
  bench::Options opts = bench::parse_options(argc, argv);

  std::cout << "=== A2: estimator scalability with number of applications ===\n\n";

  // Generate a large pool of applications once.
  const std::size_t kMaxApps = 50;
  util::Rng rng(opts.seed);
  gen::GeneratorOptions gopts;
  const auto pool = gen::generate_graphs(rng, gopts, kMaxApps);
  std::size_t max_actors = 0;
  for (const auto& g : pool) max_actors = std::max(max_actors, g.actor_count());

  util::Table table("Estimator wall-clock vs number of concurrent applications");
  table.set_header({"apps", "Second Order [ms]", "Fourth Order [ms]",
                    "Composability [ms]", "Incremental admission [ms]"});

  for (const std::size_t n : {5u, 10u, 20u, 30u, 40u, 50u}) {
    std::vector<sdf::Graph> apps(pool.begin(), pool.begin() + static_cast<long>(n));
    platform::Platform plat = platform::Platform::homogeneous(max_actors);
    platform::Mapping map = platform::Mapping::by_index(apps, plat);
    const platform::System sys(std::move(apps), std::move(plat), std::move(map));

    auto time_method = [&](prob::Method m) {
      const prob::ContentionEstimator est(prob::EstimatorOptions{.method = m});
      bench::Stopwatch clock;
      (void)est.estimate(platform::SystemView(sys));
      return 1000.0 * clock.seconds();
    };
    const double t2 = time_method(prob::Method::SecondOrder);
    const double t4 = time_method(prob::Method::FourthOrder);
    const double tc = time_method(prob::Method::Composability);

    // Incremental: admit the n applications one by one through the
    // composability-inverse controller; report the cost of the *last*
    // admission (the marginal cost the paper's O(n) claim is about).
    admission::AdmissionController ctrl(platform::Platform::homogeneous(max_actors));
    double last_ms = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<platform::NodeId> nodes(pool[i].actor_count());
      for (sdf::ActorId a = 0; a < pool[i].actor_count(); ++a) nodes[a] = a;
      bench::Stopwatch clock;
      const auto d = ctrl.request(pool[i], nodes, admission::QoS::no_requirement());
      last_ms = 1000.0 * clock.seconds();
      if (!d.admitted) std::cerr << "unexpected rejection\n";
    }

    table.add_row({std::to_string(n), util::format_double(t2, 2),
                   util::format_double(t4, 2), util::format_double(tc, 2),
                   util::format_double(last_ms, 2)});
  }
  bench::emit(table, opts, "scalability");

  std::cout << "shape: all methods stay in milliseconds; the marginal\n"
               "admission cost grows with the one new application, not with\n"
               "the number already admitted.\n";
  return 0;
}
