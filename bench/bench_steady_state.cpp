// Steady-state serving path: warm-vs-cold cost and allocation count per
// query, with identity checks — the PR-over-PR tracker for the
// "allocation-free after first sight" contract.
//
// Two serving loops, each measured cold (per-query rebuild, the pre-cache
// path) and warm (cached structure, reused arenas):
//
//  1. simulation sweep: reset(uc) + run_view() over a fixed use-case list
//     on one shared SimEngine (warm; second pass, rings cached) vs a
//     SimEngine built from sys.restrict_to(uc) per query (cold). The warm
//     pass is bracketed by the instrumented allocator — its allocation
//     count per query must be ZERO and results bitwise identical.
//
//  2. admission probing: verdict-only what_if_admit of the same two
//     candidates, alternating, against a controller whose candidate LRU
//     holds them (warm: every probe hits) vs a capacity-1 controller
//     (cold: every probe misses and rebuilds engine + loads). Warm probes
//     must be allocation-free and verdict-identical to cold.
//
// Emits BENCH_steady_state.json; CI smoke-runs it and the committed copy
// feeds the README performance cookbook.
#include "util/alloc_probe.h"  // FIRST: replaces global new/delete

#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "admission/admission.h"
#include "harness.h"

namespace {

using namespace procon;

bool same_result(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.apps.size() != b.apps.size() ||
      a.events_processed != b.events_processed ||
      a.node_utilisation != b.node_utilisation || a.horizon != b.horizon) {
    return false;
  }
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const auto& x = a.apps[i];
    const auto& y = b.apps[i];
    if (x.iterations != y.iterations || x.converged != y.converged ||
        x.average_period != y.average_period || x.worst_period != y.worst_period ||
        x.iteration_times != y.iteration_times ||
        x.actors.size() != y.actors.size()) {
      return false;
    }
    for (std::size_t k = 0; k < x.actors.size(); ++k) {
      if (x.actors[k].firings != y.actors[k].firings ||
          x.actors[k].total_waiting != y.actors[k].total_waiting ||
          x.actors[k].total_service != y.actors[k].total_service) {
        return false;
      }
    }
  }
  return true;
}

bool same_verdict(const admission::WhatIfReport& a,
                  const admission::WhatIfReport& b) {
  return a.admissible == b.admissible &&
         a.predicted_period == b.predicted_period &&
         a.peer_periods == b.peer_periods;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const sdf::Time horizon = std::min<sdf::Time>(opts.horizon, 4000);
  sim::SimOptions sopts;
  sopts.horizon = horizon;

  const platform::System sys = bench::make_workload(opts);
  const auto use_cases = bench::make_use_cases(opts, sys.app_count());
  const auto count = static_cast<double>(use_cases.size());
  bool identical = true;

  // ---- 1. simulation sweep: cold rebuild vs warm ring-cached reset --------
  std::vector<sim::SimResult> cold_results;
  cold_results.reserve(use_cases.size());
  bench::Stopwatch cold_clock;
  for (const auto& uc : use_cases) {
    sim::SimEngine engine(sys.restrict_to(uc));
    cold_results.push_back(engine.run(sopts));
  }
  const double sim_cold_us = 1e6 * cold_clock.seconds() / count;

  sim::SimEngine shared(sys);
  for (const auto& uc : use_cases) {  // first pass: build ring cache + arenas
    shared.reset(uc);
    (void)shared.run_view(sopts);
  }
  std::uint64_t warm_allocs = 0;
  bench::Stopwatch warm_clock;
  for (std::size_t i = 0; i < use_cases.size(); ++i) {
    const std::uint64_t before = util::alloc_probe::allocations();
    shared.reset(use_cases[i]);
    const sim::SimResultView view = shared.run_view(sopts);
    warm_allocs += util::alloc_probe::allocations() - before;
    identical = identical && same_result(view.materialise(), cold_results[i]);
  }
  const double sim_warm_us = 1e6 * warm_clock.seconds() / count;
  const double sim_allocs_per_query = static_cast<double>(warm_allocs) / count;

  // ---- 2. admission probing: LRU hit vs per-probe rebuild -----------------
  // Admit a resident set, then alternate verdict probes of two candidates.
  // The warm controller's LRU keeps both; the cold controller's capacity-1
  // LRU forces a rebuild on every alternation.
  const std::size_t resident = std::min<std::size_t>(3, sys.app_count() - 2);
  const auto nodes_of = [&](sdf::AppId id) {
    std::vector<platform::NodeId> nodes(sys.app(id).actor_count());
    for (sdf::ActorId a = 0; a < nodes.size(); ++a) nodes[a] = a;
    return nodes;
  };
  admission::AdmissionController warm_ctrl(sys.platform());
  admission::AdmissionController cold_ctrl(sys.platform(),
                                           /*candidate_cache_capacity=*/1);
  for (sdf::AppId id = 0; id < resident; ++id) {
    (void)warm_ctrl.request(sys.app(id), nodes_of(id), admission::QoS::no_requirement());
    (void)cold_ctrl.request(sys.app(id), nodes_of(id), admission::QoS::no_requirement());
  }
  const sdf::AppId cand_x = static_cast<sdf::AppId>(resident);
  const sdf::AppId cand_y = static_cast<sdf::AppId>(resident + 1);
  const auto nodes_x = nodes_of(cand_x);
  const auto nodes_y = nodes_of(cand_y);

  admission::WhatIfOptions verdict_only;
  verdict_only.with_estimates = false;
  admission::WhatIfReport warm_out;
  admission::WhatIfReport cold_out;
  constexpr int kProbes = 256;

  // Prime the warm LRU with both candidates.
  warm_ctrl.what_if_admit(sys.app(cand_x), nodes_x,
                          admission::QoS::no_requirement(), warm_out, verdict_only);
  warm_ctrl.what_if_admit(sys.app(cand_y), nodes_y,
                          admission::QoS::no_requirement(), warm_out, verdict_only);

  bench::Stopwatch cold_probe_clock;
  for (int k = 0; k < kProbes; ++k) {
    const sdf::AppId id = (k % 2 == 0) ? cand_x : cand_y;
    cold_ctrl.what_if_admit(sys.app(id), (k % 2 == 0) ? nodes_x : nodes_y,
                            admission::QoS::no_requirement(), cold_out,
                            verdict_only);
  }
  const double admit_cold_us = 1e6 * cold_probe_clock.seconds() / kProbes;

  std::uint64_t probe_allocs = 0;
  bench::Stopwatch warm_probe_clock;
  for (int k = 0; k < kProbes; ++k) {
    const sdf::AppId id = (k % 2 == 0) ? cand_x : cand_y;
    const std::uint64_t before = util::alloc_probe::allocations();
    warm_ctrl.what_if_admit(sys.app(id), (k % 2 == 0) ? nodes_x : nodes_y,
                            admission::QoS::no_requirement(), warm_out,
                            verdict_only);
    probe_allocs += util::alloc_probe::allocations() - before;
  }
  const double admit_warm_us = 1e6 * warm_probe_clock.seconds() / kProbes;
  const double admit_allocs_per_probe =
      static_cast<double>(probe_allocs) / kProbes;

  // Verdict identity: the last probe of each loop hit the same candidate.
  cold_ctrl.what_if_admit(sys.app(cand_x), nodes_x,
                          admission::QoS::no_requirement(), cold_out, verdict_only);
  warm_ctrl.what_if_admit(sys.app(cand_x), nodes_x,
                          admission::QoS::no_requirement(), warm_out, verdict_only);
  identical = identical && same_verdict(warm_out, cold_out);
  identical = identical && sim_allocs_per_query == 0.0 &&
              admit_allocs_per_probe == 0.0;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"steady_state\",\"seed\":%llu,\"horizon\":%lld,"
      "\"use_cases\":%zu,"
      "\"sim_cold_us\":%.2f,\"sim_warm_us\":%.2f,\"sim_speedup\":%.2f,"
      "\"sim_allocs_per_query\":%.1f,"
      "\"admit_cold_us\":%.2f,\"admit_warm_us\":%.2f,\"admit_speedup\":%.2f,"
      "\"admit_allocs_per_probe\":%.1f,"
      "\"identical\":%s}",
      static_cast<unsigned long long>(opts.seed),
      static_cast<long long>(horizon), use_cases.size(), sim_cold_us,
      sim_warm_us, sim_warm_us > 0.0 ? sim_cold_us / sim_warm_us : 0.0,
      sim_allocs_per_query, admit_cold_us, admit_warm_us,
      admit_warm_us > 0.0 ? admit_cold_us / admit_warm_us : 0.0,
      admit_allocs_per_probe, identical ? "true" : "false");

  std::cout << json << "\n";
  std::ofstream out("BENCH_steady_state.json");
  out << json << "\n";

  if (!identical) {
    std::cerr << "FAIL: warm steady-state path allocated or diverged from "
                 "the cold path\n";
    return 1;
  }
  return 0;
}
